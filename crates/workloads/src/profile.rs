//! Per-benchmark statistical profiles: the calibration knobs the CFG
//! synthesizer turns into a concrete program.

use rebalance_isa::LengthModel;
use serde::{Deserialize, Serialize};

/// Target dynamic branch-type mix, as fractions of all dynamic branch
/// instructions (the paper's Figure 1 breakdown).
///
/// Returns are implied: every (direct or indirect) call eventually
/// executes one return, so the achieved return fraction tracks
/// `call + indirect_call` automatically and is not an independent knob.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchMix {
    /// Conditional direct branches.
    pub cond: f64,
    /// Unconditional direct jumps.
    pub uncond: f64,
    /// Direct calls (and, implicitly, their returns).
    pub call: f64,
    /// Indirect calls.
    pub indirect_call: f64,
    /// Indirect jumps (switch tables, computed gotos).
    pub indirect_branch: f64,
    /// System calls.
    pub syscall: f64,
}

impl BranchMix {
    /// A mix typical of HPC loop kernels: overwhelmingly conditional
    /// branches, few calls, negligible indirect control flow.
    pub fn hpc() -> Self {
        BranchMix {
            cond: 0.80,
            uncond: 0.06,
            call: 0.06,
            indirect_call: 0.001,
            indirect_branch: 0.002,
            syscall: 0.0005,
        }
    }

    /// A mix typical of desktop integer code: more calls, visible
    /// indirect control flow.
    pub fn desktop() -> Self {
        BranchMix {
            cond: 0.70,
            uncond: 0.08,
            call: 0.09,
            indirect_call: 0.008,
            indirect_branch: 0.012,
            syscall: 0.001,
        }
    }

    /// Sum of all explicit fractions plus the implied returns
    /// (`call + indirect_call`). Should be ≈ 1.
    pub fn total(&self) -> f64 {
        self.cond
            + self.uncond
            + self.call
            + self.indirect_call
            + self.indirect_branch
            + self.syscall
            + self.implied_returns()
    }

    /// The return fraction implied by the call fractions.
    pub fn implied_returns(&self) -> f64 {
        self.call + self.indirect_call
    }

    /// Validates that fractions are non-negative, `cond` dominates zero,
    /// and the total is within 20% of 1 (the synthesizer renormalizes).
    pub fn validate(&self) -> Result<(), String> {
        let parts = [
            ("cond", self.cond),
            ("uncond", self.uncond),
            ("call", self.call),
            ("indirect_call", self.indirect_call),
            ("indirect_branch", self.indirect_branch),
            ("syscall", self.syscall),
        ];
        for (name, v) in parts {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(format!("branch mix field `{name}` = {v} out of range"));
            }
        }
        if self.cond <= 0.0 {
            return Err("branch mix needs a positive conditional fraction".into());
        }
        let t = self.total();
        if !(0.8..=1.2).contains(&t) {
            return Err(format!("branch mix total {t} too far from 1.0"));
        }
        Ok(())
    }
}

/// Population mixture of conditional-branch *site* behaviours, excluding
/// loop back-edges (which are modelled separately via [`LoopSpec`]).
///
/// Weights need not sum to one; the synthesizer normalizes. Each weight
/// describes what fraction of if-sites behave like that archetype:
///
/// | archetype | behaviour | Figure 2 bucket |
/// |---|---|---|
/// | `strongly_taken` | Bernoulli(0.97) | >90% |
/// | `strongly_not_taken` | Bernoulli(0.03) | 0–10% |
/// | `moderately_taken` | Bernoulli(0.72) | 70–80% |
/// | `moderately_not_taken` | Bernoulli(0.28) | 20–30% |
/// | `balanced` | Bernoulli(0.50) | 40–60% |
/// | `patterned` | Periodic 3T/1N | 70–80%, history-predictable |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasMix {
    /// Weight of ~97%-taken Bernoulli sites.
    pub strongly_taken: f64,
    /// Weight of ~3%-taken Bernoulli sites.
    pub strongly_not_taken: f64,
    /// Weight of ~72%-taken Bernoulli sites.
    pub moderately_taken: f64,
    /// Weight of ~28%-taken Bernoulli sites.
    pub moderately_not_taken: f64,
    /// Weight of ~50%-taken Bernoulli sites (inherently unpredictable).
    pub balanced: f64,
    /// Weight of deterministic 3-taken/1-not-taken periodic sites
    /// (history-predictable, bimodal-hostile).
    pub patterned: f64,
}

impl BiasMix {
    /// HPC-style site population: almost everything strongly biased.
    pub fn hpc() -> Self {
        BiasMix {
            strongly_taken: 0.21,
            strongly_not_taken: 0.68,
            moderately_taken: 0.02,
            moderately_not_taken: 0.03,
            balanced: 0.01,
            patterned: 0.05,
        }
    }

    /// Desktop-style site population: substantial mid-range and
    /// history-patterned mass.
    pub fn desktop() -> Self {
        BiasMix {
            strongly_taken: 0.10,
            strongly_not_taken: 0.44,
            moderately_taken: 0.08,
            moderately_not_taken: 0.08,
            balanced: 0.04,
            patterned: 0.26,
        }
    }

    /// Raw weights in a fixed order (matching the archetype table).
    pub fn weights(&self) -> [f64; 6] {
        [
            self.strongly_taken,
            self.strongly_not_taken,
            self.moderately_taken,
            self.moderately_not_taken,
            self.balanced,
            self.patterned,
        ]
    }

    /// Sum of weights.
    pub fn total(&self) -> f64 {
        self.weights().iter().sum()
    }

    /// Validates non-negative weights with a positive total.
    pub fn validate(&self) -> Result<(), String> {
        if self.weights().iter().any(|w| *w < 0.0 || w.is_nan()) {
            return Err("bias mix weights must be non-negative".into());
        }
        if self.total() <= 0.0 {
            return Err("bias mix needs a positive total weight".into());
        }
        Ok(())
    }
}

/// Loop-nest shape of a code section.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopSpec {
    /// Mean trip count of the section's inner loops.
    pub mean_iterations: f64,
    /// Fraction of loops with a *constant* trip count (the pattern a loop
    /// branch predictor captures perfectly).
    pub constant_fraction: f64,
}

impl LoopSpec {
    /// Typical HPC kernel loops: long, mostly constant trip counts.
    pub fn hpc() -> Self {
        LoopSpec {
            mean_iterations: 64.0,
            constant_fraction: 0.7,
        }
    }

    /// Typical desktop loops: short, data-dependent trip counts.
    pub fn desktop() -> Self {
        LoopSpec {
            mean_iterations: 18.0,
            constant_fraction: 0.2,
        }
    }

    /// Validates sane bounds.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mean_iterations.is_finite() && self.mean_iterations >= 2.0) {
            return Err(format!(
                "mean_iterations {} must be >= 2",
                self.mean_iterations
            ));
        }
        if !(0.0..=1.0).contains(&self.constant_fraction) {
            return Err("constant_fraction must be in [0,1]".into());
        }
        Ok(())
    }
}

/// Statistical profile of one code section (serial or parallel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectionProfile {
    /// Branch instructions as a fraction of all instructions
    /// (Figure 1's y-axis).
    pub branch_fraction: f64,
    /// Dynamic branch-type mix (Figure 1's stacking).
    pub mix: BranchMix,
    /// Conditional-branch site bias population (Figure 2).
    pub bias: BiasMix,
    /// Fraction of dynamic *conditional* branches that are loop
    /// back-edges. Drives both the >90% bucket of Figure 2 and the
    /// backward-taken share of Table I.
    pub backedge_cond_share: f64,
    /// Fraction of if-sites (excluding strongly-taken ones) whose taken
    /// target is *backward* — short `while`-style retry loops. Desktop
    /// code has many (they are the taken-backward mispredictions a loop
    /// BP cannot remove, Figure 6); HPC kernels have few.
    pub backward_if_fraction: f64,
    /// Fraction of if-sites built as if/else diamonds. Each execution
    /// runs one arm and leaves the other as dead bytes in its cache
    /// line, which is what makes wide I-cache lines *hurt* desktop code
    /// (Figure 9) while tightly-packed HPC loops love them.
    pub else_fraction: f64,
    /// Mean kernels walked sequentially per dispatch burst. Longer
    /// bursts mean fewer dispatch indirect-jumps (less BTB noise) and
    /// more sequential fetch.
    pub burst_kernels: f64,
    /// Dead (never-executed) bytes laid out per executed byte of hot
    /// code: error paths, asserts, cold switch arms. Dead stretches are
    /// sized comparable to a wide cache line, so high slack makes 128 B
    /// lines carry mostly dead bytes — the desktop behaviour of
    /// Figure 9 — while near-zero slack gives densely packed HPC loops.
    pub layout_slack: f64,
    /// Memory holding ≈99% of dynamic instructions, in KB (Figure 3).
    pub hot_kb: f64,
    /// Loop-nest shape.
    pub loops: LoopSpec,
    /// Number of distinct frequently-called functions.
    pub call_targets: u32,
    /// Distinct targets per indirect jump/call site.
    pub indirect_fanout: u32,
}

impl SectionProfile {
    /// Validates all nested knobs.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.005..=0.5).contains(&self.branch_fraction) {
            return Err(format!(
                "branch_fraction {} outside plausible range",
                self.branch_fraction
            ));
        }
        self.mix.validate()?;
        self.bias.validate()?;
        self.loops.validate()?;
        if !(0.02..=0.95).contains(&self.backedge_cond_share) {
            return Err(format!(
                "backedge_cond_share {} outside (0.02, 0.95)",
                self.backedge_cond_share
            ));
        }
        if !(0.0..=0.6).contains(&self.backward_if_fraction) {
            return Err(format!(
                "backward_if_fraction {} outside [0, 0.6]",
                self.backward_if_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.else_fraction) {
            return Err(format!(
                "else_fraction {} outside [0, 1]",
                self.else_fraction
            ));
        }
        if !(1.0..=64.0).contains(&self.burst_kernels) {
            return Err(format!(
                "burst_kernels {} outside [1, 64]",
                self.burst_kernels
            ));
        }
        if !(0.0..=3.0).contains(&self.layout_slack) {
            return Err(format!("layout_slack {} outside [0, 3]", self.layout_slack));
        }
        if !(0.25..=4096.0).contains(&self.hot_kb) {
            return Err(format!("hot_kb {} outside (0.25, 4096)", self.hot_kb));
        }
        if self.call_targets == 0 || self.call_targets > 4096 {
            return Err("call_targets must be in 1..=4096".into());
        }
        if self.indirect_fanout == 0 || self.indirect_fanout > 64 {
            return Err("indirect_fanout must be in 1..=64".into());
        }
        Ok(())
    }

    /// Average instructions between branch instructions implied by
    /// `branch_fraction`.
    pub fn insts_per_branch(&self) -> f64 {
        1.0 / self.branch_fraction
    }
}

/// Phase structure of a workload's schedule: how the instruction budget
/// is cut into serial/parallel epochs, whether the per-epoch budgets
/// ramp up over the run, and whether the parallel working set drifts
/// across distinct footprint windows from epoch to epoch.
///
/// The paper's roster uses the fixed legacy shape (eight identical
/// serial→parallel alternations). Kernel-archetype workloads compose
/// richer shapes: an FFT's butterfly stages become drift windows, a
/// BFS's growing frontier becomes a budget ramp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseShape {
    /// Number of serial→parallel alternations (epochs) in the schedule.
    pub epochs: u32,
    /// Ratio of the last epoch's instruction budget to the first's.
    /// `1.0` keeps every epoch the same length; `>1` ramps the run up
    /// (growing working sets, refining solvers), `<1` ramps it down.
    pub ramp: f64,
    /// Number of distinct parallel-footprint windows the epochs sweep
    /// through. `1` keeps the legacy single hot region; `W > 1` splits
    /// the parallel hot footprint into `W` disjoint kernel populations
    /// and walks the schedule's epochs across them, so the dynamic
    /// working set drifts over the run while the total footprint stays
    /// on target.
    pub drift_windows: u32,
}

impl PhaseShape {
    /// The fixed shape the paper roster has always used: eight equal
    /// serial→parallel alternations over one hot region.
    pub fn legacy() -> Self {
        PhaseShape {
            epochs: 8,
            ramp: 1.0,
            drift_windows: 1,
        }
    }

    /// `true` when this shape is exactly the legacy schedule (which the
    /// synthesizer then emits through the original repeat-compressed
    /// path, byte-identical to pre-phase-shape traces).
    pub fn is_legacy(&self) -> bool {
        *self == Self::legacy()
    }

    /// Validates sane bounds: 1–64 epochs, ramp within [0.1, 10], and
    /// at most one drift window per epoch (capped at 16).
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=64).contains(&self.epochs) {
            return Err(format!("epochs {} outside 1..=64", self.epochs));
        }
        if !(self.ramp.is_finite() && (0.1..=10.0).contains(&self.ramp)) {
            return Err(format!("ramp {} outside [0.1, 10]", self.ramp));
        }
        if !(1..=16).contains(&self.drift_windows) {
            return Err(format!(
                "drift_windows {} outside 1..=16",
                self.drift_windows
            ));
        }
        if self.drift_windows > self.epochs {
            return Err(format!(
                "drift_windows {} exceeds epochs {} (some windows would never run)",
                self.drift_windows, self.epochs
            ));
        }
        Ok(())
    }
}

/// Back-end (non-front-end) behaviour used by the interval core model.
///
/// The paper's CMP evaluation varies only front-end structures; data-side
/// stalls are a per-workload constant across core configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackendProfile {
    /// Base CPI of the lean core on this workload with a perfect
    /// front-end (issue limits, dependencies, FU contention).
    pub base_cpi: f64,
    /// CPI contribution of data-cache and memory stalls.
    pub data_stall_cpi: f64,
}

impl BackendProfile {
    /// Validates sane bounds.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.2..=5.0).contains(&self.base_cpi) {
            return Err(format!("base_cpi {} outside (0.2, 5)", self.base_cpi));
        }
        if !(0.0..=10.0).contains(&self.data_stall_cpi) {
            return Err(format!(
                "data_stall_cpi {} outside (0, 10)",
                self.data_stall_cpi
            ));
        }
        Ok(())
    }
}

/// Complete statistical profile of a benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Profile of serial (master-thread, between-regions) code.
    pub serial: SectionProfile,
    /// Profile of parallel-region code.
    pub parallel: SectionProfile,
    /// Fraction of dynamic instructions executed serially by the master
    /// thread (at the paper's 8-thread configuration).
    pub serial_fraction: f64,
    /// Total static code footprint in KB (Figure 3's "Static" series).
    pub static_kb: f64,
    /// Portion of the static footprint contributed by external libraries,
    /// laid out in a distant text region (prominent in ExMatEx).
    pub lib_kb: f64,
    /// Default dynamic instruction budget for the master-thread trace at
    /// full scale.
    pub instructions: u64,
    /// Mean instruction byte length for non-branch instructions (HPC
    /// FP/SIMD code runs longer encodings than desktop integer code).
    pub mean_inst_bytes: f64,
    /// Back-end behaviour for the interval model.
    pub backend: BackendProfile,
    /// Phase structure of the schedule (epoch count, budget ramp,
    /// footprint drift). The paper roster uses [`PhaseShape::legacy`].
    pub phases: PhaseShape,
}

impl WorkloadProfile {
    /// Validates every knob; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        self.serial.validate()?;
        self.parallel.validate()?;
        self.backend.validate()?;
        self.phases.validate()?;
        if !(0.0..=1.0).contains(&self.serial_fraction) {
            return Err("serial_fraction must be in [0,1]".into());
        }
        if self.static_kb < self.serial.hot_kb + self.parallel.hot_kb {
            return Err(format!(
                "static_kb {} smaller than combined hot footprints {}",
                self.static_kb,
                self.serial.hot_kb + self.parallel.hot_kb
            ));
        }
        if self.lib_kb > self.static_kb {
            return Err("lib_kb cannot exceed static_kb".into());
        }
        if self.instructions < 10_000 {
            return Err("instruction budget too small to be meaningful".into());
        }
        if !(2.5..=7.5).contains(&self.mean_inst_bytes) {
            return Err(format!(
                "mean_inst_bytes {} outside (2.5, 7.5)",
                self.mean_inst_bytes
            ));
        }
        Ok(())
    }

    /// Instruction-length model matching `mean_inst_bytes`.
    pub fn length_model(&self) -> LengthModel {
        // Pick the 8-entry mixture with the requested mean: spread ±2
        // bytes around the mean, clamped to the encodable range.
        let mean = self.mean_inst_bytes;
        let base = mean.round() as i32;
        let spread: [i32; 8] = [-1, 0, -2, 1, 0, 2, 0, 0];
        let mut mix = [0u8; 8];
        let mut sum = 0i32;
        for (slot, d) in mix.iter_mut().zip(spread) {
            let v = (base + d).clamp(2, 8);
            *slot = v as u8;
            sum += v;
        }
        // Nudge entries so the integer mixture mean is as close to the
        // target as possible.
        let target_sum = (mean * 8.0).round() as i32;
        let mut i = 0;
        while sum < target_sum && i < 8 {
            if mix[i] < 8 {
                mix[i] += 1;
                sum += 1;
            }
            i += 1;
        }
        let mut i = 0;
        while sum > target_sum && i < 8 {
            if mix[i] > 2 {
                mix[i] -= 1;
                sum -= 1;
            }
            i += 1;
        }
        LengthModel::new(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_mixes_validate() {
        BranchMix::hpc().validate().unwrap();
        BranchMix::desktop().validate().unwrap();
        assert!(BranchMix::hpc().total() > 0.9);
        assert!(BranchMix::hpc().cond > BranchMix::desktop().cond);
    }

    #[test]
    fn branch_mix_rejects_bad_values() {
        let mut m = BranchMix::hpc();
        m.cond = -0.1;
        assert!(m.validate().is_err());
        let mut m = BranchMix::hpc();
        m.cond = 0.0;
        assert!(m.validate().is_err());
        let mut m = BranchMix::hpc();
        m.uncond = 0.9; // total far above 1
        assert!(m.validate().is_err());
    }

    #[test]
    fn implied_returns_track_calls() {
        let m = BranchMix::desktop();
        assert!((m.implied_returns() - (m.call + m.indirect_call)).abs() < 1e-12);
    }

    #[test]
    fn preset_bias_mixes_validate() {
        BiasMix::hpc().validate().unwrap();
        BiasMix::desktop().validate().unwrap();
        // HPC is dominated by strongly biased sites.
        let h = BiasMix::hpc();
        let strong = h.strongly_taken + h.strongly_not_taken;
        assert!(strong / h.total() > 0.7);
        // Desktop has much more mid-range mass.
        let d = BiasMix::desktop();
        let mid = d.moderately_taken + d.moderately_not_taken + d.balanced + d.patterned;
        assert!(mid / d.total() > 0.4);
    }

    #[test]
    fn bias_mix_rejects_negative_and_zero() {
        let mut b = BiasMix::hpc();
        b.balanced = -0.5;
        assert!(b.validate().is_err());
        let z = BiasMix {
            strongly_taken: 0.0,
            strongly_not_taken: 0.0,
            moderately_taken: 0.0,
            moderately_not_taken: 0.0,
            balanced: 0.0,
            patterned: 0.0,
        };
        assert!(z.validate().is_err());
    }

    #[test]
    fn loop_spec_validation() {
        LoopSpec::hpc().validate().unwrap();
        LoopSpec::desktop().validate().unwrap();
        assert!(LoopSpec {
            mean_iterations: 1.0,
            constant_fraction: 0.5
        }
        .validate()
        .is_err());
        assert!(LoopSpec {
            mean_iterations: 10.0,
            constant_fraction: 1.5
        }
        .validate()
        .is_err());
        assert!(LoopSpec::hpc().mean_iterations > LoopSpec::desktop().mean_iterations);
    }

    fn sample_section() -> SectionProfile {
        SectionProfile {
            branch_fraction: 0.05,
            mix: BranchMix::hpc(),
            bias: BiasMix::hpc(),
            backedge_cond_share: 0.45,
            backward_if_fraction: 0.08,
            else_fraction: 0.2,
            burst_kernels: 6.0,
            layout_slack: 0.1,
            hot_kb: 2.0,
            loops: LoopSpec::hpc(),
            call_targets: 4,
            indirect_fanout: 4,
        }
    }

    #[test]
    fn section_profile_validation() {
        sample_section().validate().unwrap();
        let mut s = sample_section();
        s.branch_fraction = 0.6;
        assert!(s.validate().is_err());
        let mut s = sample_section();
        s.hot_kb = 0.0;
        assert!(s.validate().is_err());
        let mut s = sample_section();
        s.call_targets = 0;
        assert!(s.validate().is_err());
        let mut s = sample_section();
        s.indirect_fanout = 100;
        assert!(s.validate().is_err());
        let mut s = sample_section();
        s.backedge_cond_share = 0.99;
        assert!(s.validate().is_err());
        let mut s = sample_section();
        s.backward_if_fraction = 0.9;
        assert!(s.validate().is_err());
        let mut s = sample_section();
        s.else_fraction = 1.5;
        assert!(s.validate().is_err());
        let mut s = sample_section();
        s.burst_kernels = 0.5;
        assert!(s.validate().is_err());
        let mut s = sample_section();
        s.layout_slack = 5.0;
        assert!(s.validate().is_err());
        assert!((sample_section().insts_per_branch() - 20.0).abs() < 1e-9);
    }

    fn sample_profile() -> WorkloadProfile {
        WorkloadProfile {
            serial: sample_section(),
            parallel: sample_section(),
            serial_fraction: 0.05,
            static_kb: 120.0,
            lib_kb: 0.0,
            instructions: 1_000_000,
            mean_inst_bytes: 5.0,
            backend: BackendProfile {
                base_cpi: 1.0,
                data_stall_cpi: 0.4,
            },
            phases: PhaseShape::legacy(),
        }
    }

    #[test]
    fn phase_shape_validation() {
        PhaseShape::legacy().validate().unwrap();
        assert!(PhaseShape::legacy().is_legacy());
        let ramped = PhaseShape {
            epochs: 6,
            ramp: 3.0,
            drift_windows: 3,
        };
        ramped.validate().unwrap();
        assert!(!ramped.is_legacy());
        let mut bad = PhaseShape::legacy();
        bad.epochs = 0;
        assert!(bad.validate().is_err());
        let mut bad = PhaseShape::legacy();
        bad.ramp = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = PhaseShape::legacy();
        bad.drift_windows = 0;
        assert!(bad.validate().is_err());
        let mut bad = PhaseShape::legacy();
        bad.drift_windows = 32;
        assert!(bad.validate().is_err());
        // More windows than epochs would leave windows unvisited.
        let bad = PhaseShape {
            epochs: 2,
            ramp: 1.0,
            drift_windows: 4,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn workload_profile_rejects_bad_phase_shape() {
        let mut p = sample_profile();
        p.phases.epochs = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn workload_profile_validation() {
        sample_profile().validate().unwrap();
        let mut p = sample_profile();
        p.static_kb = 1.0; // smaller than hot footprints
        assert!(p.validate().is_err());
        let mut p = sample_profile();
        p.lib_kb = 500.0;
        assert!(p.validate().is_err());
        let mut p = sample_profile();
        p.instructions = 10;
        assert!(p.validate().is_err());
        let mut p = sample_profile();
        p.serial_fraction = 1.2;
        assert!(p.validate().is_err());
        let mut p = sample_profile();
        p.mean_inst_bytes = 10.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn backend_profile_validation() {
        let b = BackendProfile {
            base_cpi: 1.0,
            data_stall_cpi: 0.5,
        };
        b.validate().unwrap();
        assert!(BackendProfile {
            base_cpi: 0.0,
            data_stall_cpi: 0.5
        }
        .validate()
        .is_err());
        assert!(BackendProfile {
            base_cpi: 1.0,
            data_stall_cpi: 20.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn length_model_mean_tracks_target() {
        for target in [3.0, 3.5, 4.0, 5.0, 5.5, 6.0] {
            let mut p = sample_profile();
            p.mean_inst_bytes = target;
            let lm = p.length_model();
            assert!(
                (lm.mean_other_len() - target).abs() <= 0.15,
                "target {target}, got {}",
                lm.mean_other_len()
            );
        }
    }
}
