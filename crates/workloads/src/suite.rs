//! Benchmark-suite taxonomy.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four benchmark suites of the study.
///
/// Three HPC suites (29 applications) are compared against one desktop
/// suite (12 applications), exactly as in the paper's methodology section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// ExMatEx proxy applications (8): recent DOE co-design apps with
    /// real scientific workloads and external library dependencies.
    ExMatEx,
    /// SPEC OMP 2012 (11 used): shared-memory scientific/engineering
    /// applications; the three NPB-identical codes are excluded.
    SpecOmp,
    /// NAS Parallel Benchmarks (10): CFD pseudo-applications.
    Npb,
    /// SPEC CPU INT 2006 (12): the desktop/server comparison point,
    /// run sequentially.
    SpecCpuInt,
}

impl Suite {
    /// All suites in the paper's presentation order.
    pub const ALL: [Suite; 4] = [
        Suite::ExMatEx,
        Suite::SpecOmp,
        Suite::Npb,
        Suite::SpecCpuInt,
    ];

    /// The three HPC suites.
    pub const HPC: [Suite; 3] = [Suite::ExMatEx, Suite::SpecOmp, Suite::Npb];

    /// `true` for the HPC suites, `false` for SPEC CPU INT.
    pub fn is_hpc(self) -> bool {
        !matches!(self, Suite::SpecCpuInt)
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Suite::ExMatEx => "ExMatEx",
            Suite::SpecOmp => "SPEC OMP",
            Suite::Npb => "NPB",
            Suite::SpecCpuInt => "SPEC CPU INT",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpc_classification() {
        assert!(Suite::ExMatEx.is_hpc());
        assert!(Suite::SpecOmp.is_hpc());
        assert!(Suite::Npb.is_hpc());
        assert!(!Suite::SpecCpuInt.is_hpc());
        assert_eq!(Suite::HPC.len(), 3);
        assert!(Suite::HPC.iter().all(|s| s.is_hpc()));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Suite::ExMatEx.to_string(), "ExMatEx");
        assert_eq!(Suite::SpecOmp.to_string(), "SPEC OMP");
        assert_eq!(Suite::Npb.to_string(), "NPB");
        assert_eq!(Suite::SpecCpuInt.to_string(), "SPEC CPU INT");
    }

    #[test]
    fn all_is_ordered_and_unique() {
        assert_eq!(Suite::ALL.len(), 4);
        let mut set = std::collections::BTreeSet::new();
        for s in Suite::ALL {
            assert!(set.insert(s));
        }
    }
}
