//! Benchmark-suite taxonomy.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The benchmark suites of the study, plus the synthetic kernel
/// archetypes.
///
/// Three HPC suites (29 applications) are compared against one desktop
/// suite (12 applications), exactly as in the paper's methodology
/// section. The [`Suite::Kernels`] suite is ours: parameterized
/// kernel archetypes (stencil, SpMV, graph, transform, branchy integer,
/// streaming) that span the HPC–desktop front-end spectrum with known
/// design targets instead of paper-calibrated constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// ExMatEx proxy applications (8): recent DOE co-design apps with
    /// real scientific workloads and external library dependencies.
    ExMatEx,
    /// SPEC OMP 2012 (11 used): shared-memory scientific/engineering
    /// applications; the three NPB-identical codes are excluded.
    SpecOmp,
    /// NAS Parallel Benchmarks (10): CFD pseudo-applications.
    Npb,
    /// SPEC CPU INT 2006 (12): the desktop/server comparison point,
    /// run sequentially.
    SpecCpuInt,
    /// Synthetic kernel archetypes generated from
    /// [`KernelSpec`](crate::KernelSpec)s: not part of the paper's
    /// roster, but the axis along which HPM-assisted performance
    /// engineering organizes analysis.
    Kernels,
}

/// Coarse classification of a suite, decided by one exhaustive match
/// (see [`Suite::class`]) so a new variant cannot be left unclassified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteClass {
    /// Paper HPC suites (ExMatEx, SPEC OMP, NPB).
    Hpc,
    /// Paper desktop suite (SPEC CPU INT).
    Desktop,
    /// Our synthetic kernel-archetype suite.
    Synthetic,
}

impl Suite {
    /// Number of suites; checked against [`Suite::ALL`] and the
    /// exhaustive [`Suite::index`] match by a compile-time guard below.
    pub const COUNT: usize = 5;

    /// All suites in presentation order: the paper's four, then ours.
    pub const ALL: [Suite; Suite::COUNT] = [
        Suite::ExMatEx,
        Suite::SpecOmp,
        Suite::Npb,
        Suite::SpecCpuInt,
        Suite::Kernels,
    ];

    /// The four suites the paper evaluates.
    pub const PAPER: [Suite; 4] = [
        Suite::ExMatEx,
        Suite::SpecOmp,
        Suite::Npb,
        Suite::SpecCpuInt,
    ];

    /// The three HPC suites of the paper.
    pub const HPC: [Suite; 3] = [Suite::ExMatEx, Suite::SpecOmp, Suite::Npb];

    /// Position of this suite in [`Suite::ALL`]. The match is
    /// exhaustive on purpose: adding a variant without deciding its
    /// presentation position is a compile error, and the const guard
    /// below rejects an `ALL` that disagrees with it.
    pub const fn index(self) -> usize {
        match self {
            Suite::ExMatEx => 0,
            Suite::SpecOmp => 1,
            Suite::Npb => 2,
            Suite::SpecCpuInt => 3,
            Suite::Kernels => 4,
        }
    }

    /// The suite's classification — the single exhaustive match every
    /// derived predicate ([`Suite::is_hpc`], [`Suite::is_paper`],
    /// [`Suite::has_parallel_sections`]) funnels through.
    pub const fn class(self) -> SuiteClass {
        match self {
            Suite::ExMatEx | Suite::SpecOmp | Suite::Npb => SuiteClass::Hpc,
            Suite::SpecCpuInt => SuiteClass::Desktop,
            Suite::Kernels => SuiteClass::Synthetic,
        }
    }

    /// `true` for the paper's HPC suites.
    pub const fn is_hpc(self) -> bool {
        matches!(self.class(), SuiteClass::Hpc)
    }

    /// `true` for the four suites the paper evaluates.
    pub const fn is_paper(self) -> bool {
        !matches!(self.class(), SuiteClass::Synthetic)
    }

    /// `true` when the suite's workloads schedule parallel sections
    /// (everything except the sequentially-run SPEC CPU INT).
    pub const fn has_parallel_sections(self) -> bool {
        !matches!(self.class(), SuiteClass::Desktop)
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Suite::ExMatEx => "ExMatEx",
            Suite::SpecOmp => "SPEC OMP",
            Suite::Npb => "NPB",
            Suite::SpecCpuInt => "SPEC CPU INT",
            Suite::Kernels => "Kernels",
        }
    }

    /// Parses a (case-insensitive) suite name as the CLI spells it:
    /// `exmatex`, `specomp`/`spec-omp`, `npb`, `specint`/`spec-cpu-int`,
    /// `kernels`.
    pub fn parse(name: &str) -> Option<Suite> {
        let canon: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match canon.as_str() {
            "exmatex" => Some(Suite::ExMatEx),
            "specomp" | "specomp2012" | "omp" => Some(Suite::SpecOmp),
            "npb" | "nas" => Some(Suite::Npb),
            "specint" | "speccpuint" | "speccpuint2006" | "int" => Some(Suite::SpecCpuInt),
            "kernels" | "kernel" => Some(Suite::Kernels),
            _ => None,
        }
    }
}

// Compile-time guard: `ALL` must list every suite exactly once, in
// `index` order, and `COUNT` must match. Together with the exhaustive
// matches in `index`/`class`, adding a `Suite` variant without
// classifying and ordering it fails the build instead of going stale.
const _: () = {
    assert!(Suite::ALL.len() == Suite::COUNT);
    let mut i = 0;
    while i < Suite::ALL.len() {
        assert!(Suite::ALL[i].index() == i);
        i += 1;
    }
};

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpc_classification() {
        assert!(Suite::ExMatEx.is_hpc());
        assert!(Suite::SpecOmp.is_hpc());
        assert!(Suite::Npb.is_hpc());
        assert!(!Suite::SpecCpuInt.is_hpc());
        assert!(!Suite::Kernels.is_hpc());
        assert_eq!(Suite::HPC.len(), 3);
        assert!(Suite::HPC.iter().all(|s| s.is_hpc()));
    }

    #[test]
    fn paper_and_parallel_classification() {
        assert!(Suite::PAPER.iter().all(|s| s.is_paper()));
        assert!(!Suite::Kernels.is_paper());
        assert!(Suite::Kernels.has_parallel_sections());
        assert!(!Suite::SpecCpuInt.has_parallel_sections());
        assert!(Suite::HPC.iter().all(|s| s.has_parallel_sections()));
    }

    /// The const arrays are derived views of the classification: they
    /// must agree exactly with filtering `ALL` through the exhaustive
    /// predicates, so none of them can silently drift.
    #[test]
    fn const_arrays_match_derived_filters() {
        let hpc: Vec<Suite> = Suite::ALL.into_iter().filter(|s| s.is_hpc()).collect();
        assert_eq!(hpc, Suite::HPC.to_vec());
        let paper: Vec<Suite> = Suite::ALL.into_iter().filter(|s| s.is_paper()).collect();
        assert_eq!(paper, Suite::PAPER.to_vec());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Suite::ExMatEx.to_string(), "ExMatEx");
        assert_eq!(Suite::SpecOmp.to_string(), "SPEC OMP");
        assert_eq!(Suite::Npb.to_string(), "NPB");
        assert_eq!(Suite::SpecCpuInt.to_string(), "SPEC CPU INT");
        assert_eq!(Suite::Kernels.to_string(), "Kernels");
    }

    #[test]
    fn all_is_ordered_and_unique() {
        assert_eq!(Suite::ALL.len(), Suite::COUNT);
        let mut set = std::collections::BTreeSet::new();
        for (i, s) in Suite::ALL.into_iter().enumerate() {
            assert!(set.insert(s));
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn parse_accepts_cli_spellings() {
        assert_eq!(Suite::parse("kernels"), Some(Suite::Kernels));
        assert_eq!(Suite::parse("ExMatEx"), Some(Suite::ExMatEx));
        assert_eq!(Suite::parse("spec-omp"), Some(Suite::SpecOmp));
        assert_eq!(Suite::parse("SPEC CPU INT"), Some(Suite::SpecCpuInt));
        assert_eq!(Suite::parse("npb"), Some(Suite::Npb));
        assert_eq!(Suite::parse("quake"), None);
    }
}
