//! The CFG synthesizer: turns a [`WorkloadProfile`] into a laid-out
//! [`Program`] plus a serial/parallel [`Schedule`].
//!
//! # Structure of a synthesized section
//!
//! Each code section (serial, parallel) becomes:
//!
//! ```text
//! hub ──(indirect dispatch)──▶ kernel k
//!        kernel k: [slot blocks ... backedge(Loop)] ──link──▶ kernel k+1
//!                                 │ (1/burst)                 (burst walk)
//!                                 ▼
//!                               back to hub (random next kernel)
//! ```
//!
//! * **Kernels** are inner loops. Their bodies carry the planned mix of
//!   branch slots (if-sites with calibrated bias, calls into shared
//!   functions, indirect jumps, syscalls) and iterate with the profile's
//!   trip-count distribution, so branch ratio, bias spectrum,
//!   backward-taken share, and basic-block length all land on target.
//! * **Random burst dispatch** (an indirect-jump hub selecting where the
//!   next burst of kernels starts) breaks the pure cyclic sweep that
//!   would make LRU I-caches fall off a cliff, giving the smooth
//!   footprint-vs-capacity behaviour real code exhibits.
//! * **Hot functions** shared by call sites model frequently-called
//!   (library) code; **cold functions** reached through a rare guarded
//!   excursion model init/error paths and fill the static footprint
//!   without perturbing the 99% dynamic footprint.
//!
//! The synthesizer is deterministic: the same profile and name produce a
//! byte-identical program and trace.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rebalance_trace::{
    BlockId, CondBehavior, IterCount, Phase, ProgramBuilder, RegionId, Schedule, Section,
    SyntheticTrace, Terminator,
};

use crate::profile::{SectionProfile, WorkloadProfile};

/// Maximum kernels addressed by one dispatch hub level.
const GROUP_SIZE: usize = 48;
/// Cap on synthesized kernels per section.
const MAX_KERNELS: usize = 2048;
/// Cap on callee fan-out for the cold-excursion indirect call.
const COLD_FANOUT: usize = 24;

/// Synthesizes the complete trace for a named workload.
///
/// # Errors
///
/// Returns a description of the first invalid profile knob; a valid
/// [`WorkloadProfile`] never fails to synthesize.
pub fn synthesize(name: &str, profile: &WorkloadProfile) -> Result<SyntheticTrace, String> {
    profile.validate()?;
    let seed = synthesis_seed(name);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5deb_a511);
    let mut b = ProgramBuilder::with_length_model(profile.length_model());

    let mean_len = profile.mean_inst_bytes;
    let has_serial = profile.serial_fraction > 0.0;
    let has_parallel = profile.serial_fraction < 1.0;

    // Region declaration order fixes the address map: hot code first
    // (one region per drift window when the phase shape asks for
    // footprint drift), then shared functions, then (far away) library
    // code, then cold init/error code.
    let windows = if has_parallel {
        effective_drift_windows(profile)
    } else {
        1
    };
    let hot_par = b.region("hot.parallel");
    let mut par_regions = vec![hot_par];
    for w in 1..windows {
        par_regions.push(b.region(&format!("hot.parallel.w{w}")));
    }
    let hot_ser = b.region("hot.serial");
    let funcs_region = b.region("funcs");
    let lib_region = if profile.lib_kb > 0.0 {
        Some(b.region_at("lib", rebalance_isa::Addr::new(0x0800_0000)))
    } else {
        None
    };
    let cold_region = b.region("cold");

    // Shared hot functions live in the library region when the workload
    // links external libraries (the ExMatEx pattern), else near the code.
    let hot_func_region = lib_region.unwrap_or(funcs_region);
    let max_targets = profile
        .serial
        .call_targets
        .max(profile.parallel.call_targets) as usize;
    let func_body = ((2.0 / profile.parallel.branch_fraction / 3.0).round() as u32).clamp(4, 96);
    let hot_funcs = build_leaf_functions(&mut b, hot_func_region, max_targets, func_body);
    let hot_funcs_bytes = estimate_leaf_bytes(max_targets, func_body, mean_len);

    // Cold code: fills static_kb (and lib_kb) beyond the hot footprint.
    let hot_total_kb = profile.serial.hot_kb * (has_serial as u32 as f64)
        + profile.parallel.hot_kb * (has_parallel as u32 as f64);
    let cold_kb = (profile.static_kb - hot_total_kb - hot_funcs_bytes / 1024.0).max(2.0);
    let lib_filler_kb = (profile.lib_kb - hot_funcs_bytes / 1024.0).max(0.0);
    let body_cold = ((1.0 / profile.serial.branch_fraction).round() as u32).clamp(2, 60);
    let cold_funcs = build_chain_functions(&mut b, cold_region, cold_kb, body_cold, mean_len);
    let lib_cold_funcs = match lib_region {
        Some(r) if lib_filler_kb > 1.0 => {
            build_chain_functions(&mut b, r, lib_filler_kb, body_cold, mean_len)
        }
        _ => Vec::new(),
    };
    let mut excursion_funcs = cold_funcs.clone();
    excursion_funcs.extend(lib_cold_funcs.iter().copied());

    // Sections. With drift, the parallel hot footprint is split into
    // `windows` disjoint kernel populations (one region each) whose
    // combined size stays on the profile's `hot_kb` target; each builds
    // a self-contained dispatch structure, so an epoch entering window
    // `w` keeps its working set inside that window.
    let par_entries: Vec<BlockId> = if has_parallel {
        // One SectionCtx spans all windows, so the bias-archetype
        // population and backward/else shares stay proportional over
        // the whole section no matter how it is partitioned.
        let mut ctx = SectionCtx::new(&profile.parallel);
        par_regions
            .iter()
            .map(|&region| {
                let mut section = profile.parallel;
                if windows > 1 {
                    section.hot_kb = (section.hot_kb / windows as f64).max(0.3);
                }
                build_section(
                    &mut b,
                    region,
                    &section,
                    mean_len,
                    &hot_funcs,
                    &excursion_funcs,
                    &mut rng,
                    &mut ctx,
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let ser_entry = if has_serial {
        let mut ctx = SectionCtx::new(&profile.serial);
        Some(build_section(
            &mut b,
            hot_ser,
            &profile.serial,
            mean_len,
            &hot_funcs,
            &excursion_funcs,
            &mut rng,
            &mut ctx,
        ))
    } else {
        None
    };

    let program = b.build().map_err(|e| e.to_string())?;
    let schedule = build_schedule(profile, ser_entry, &par_entries);
    Ok(SyntheticTrace::new(program, schedule, seed))
}

/// Drift windows actually synthesized: the requested count, capped so
/// every window keeps a meaningful (≥ 0.5 KB) kernel population.
fn effective_drift_windows(profile: &WorkloadProfile) -> u32 {
    let max_by_footprint = (profile.parallel.hot_kb / 0.5).floor() as u32;
    profile.phases.drift_windows.min(max_by_footprint).max(1)
}

/// The deterministic replay seed [`synthesize`] gives a workload's
/// trace — derived from the name alone, so cache keys can compute it
/// without synthesizing.
pub(crate) fn synthesis_seed(name: &str) -> u64 {
    fnv1a(name.as_bytes())
}

/// FNV-1a over bytes; stable workload seeds.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// One branch slot inside a kernel body.
#[derive(Debug, Clone)]
enum Slot {
    /// Conditional if-site: behaviour, whether the taken target is the
    /// kernel entry (backward) instead of the reconvergence point, and
    /// whether the site is an if/else diamond (two arms, one dead per
    /// execution).
    If {
        behavior: CondBehavior,
        backward: bool,
        has_else: bool,
    },
    /// Direct call to a shared hot function.
    Call,
    /// Indirect call across several hot functions.
    IndirectCall,
    /// Indirect jump over an in-kernel switch.
    IndirectJump,
    /// Unconditional direct jump.
    Uncond,
    /// System call.
    Syscall,
    /// Rarely-taken guard leading to the cold-code excursion stub.
    ColdExcursion { p: f64 },
}

/// Deterministic largest-remainder assignment over weighted archetypes.
#[derive(Debug)]
struct ProportionalPicker {
    weights: Vec<f64>,
    counts: Vec<u64>,
    assigned: u64,
}

impl ProportionalPicker {
    fn new(weights: &[f64]) -> Self {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "picker needs positive total weight");
        ProportionalPicker {
            weights: weights.iter().map(|w| w / total).collect(),
            counts: vec![0; weights.len()],
            assigned: 0,
        }
    }

    fn pick(&mut self) -> usize {
        let n = self.assigned as f64 + 1.0;
        let mut best = 0;
        let mut best_deficit = f64::NEG_INFINITY;
        for (i, (&w, &c)) in self.weights.iter().zip(&self.counts).enumerate() {
            let deficit = w * n - c as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = i;
            }
        }
        self.counts[best] += 1;
        self.assigned += 1;
        best
    }
}

/// Maps a bias archetype index (see [`BiasMix::weights`]) to a concrete
/// behaviour, with deterministic per-site jitter.
///
/// [`BiasMix::weights`]: crate::profile::BiasMix::weights
fn archetype_behavior(arch: usize, rng: &mut SmallRng) -> CondBehavior {
    let jitter = |rng: &mut SmallRng, lo: f64, hi: f64| rng.gen_range(lo..hi);
    match arch {
        0 => CondBehavior::Bernoulli {
            p_taken: jitter(rng, 0.975, 0.998),
        },
        1 => CondBehavior::Bernoulli {
            p_taken: jitter(rng, 0.002, 0.025),
        },
        2 => CondBehavior::Bernoulli {
            p_taken: jitter(rng, 0.66, 0.79),
        },
        3 => CondBehavior::Bernoulli {
            p_taken: jitter(rng, 0.21, 0.34),
        },
        4 => CondBehavior::Bernoulli {
            p_taken: jitter(rng, 0.42, 0.58),
        },
        _ => {
            // Patterned: deterministic periodic shapes, cycled.
            const SHAPES: [(u16, u16); 4] = [(3, 1), (2, 2), (7, 1), (4, 2)];
            let (t, n) = SHAPES[rng.gen_range(0..SHAPES.len())];
            CondBehavior::Periodic {
                taken: t,
                not_taken: n,
            }
        }
    }
}

/// Builds `count` single-block leaf functions (body + `Return`).
fn build_leaf_functions(
    b: &mut ProgramBuilder,
    region: RegionId,
    count: usize,
    body: u32,
) -> Vec<BlockId> {
    (0..count)
        .map(|_| b.add_block(region, body, Terminator::Return))
        .collect()
}

fn estimate_leaf_bytes(count: usize, body: u32, mean_len: f64) -> f64 {
    count as f64 * (f64::from(body) * mean_len + 2.0)
}

/// Builds chained multi-block functions filling ~`kb` kilobytes; returns
/// their entry blocks.
fn build_chain_functions(
    b: &mut ProgramBuilder,
    region: RegionId,
    kb: f64,
    body: u32,
    mean_len: f64,
) -> Vec<BlockId> {
    const CHAIN_BLOCKS: usize = 12;
    let func_bytes = CHAIN_BLOCKS as f64 * (f64::from(body) * mean_len + 1.0);
    let count = ((kb * 1024.0 / func_bytes).round() as usize).clamp(1, 4096);
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let ids = b.reserve_blocks(CHAIN_BLOCKS);
        for (i, &id) in ids.iter().enumerate() {
            let term = if i + 1 == CHAIN_BLOCKS {
                Terminator::Return
            } else {
                Terminator::FallThrough { next: ids[i + 1] }
            };
            b.define_block(id, region, body, term);
        }
        entries.push(ids[0]);
    }
    entries
}

/// Per-section synthesis plan derived from the profile.
#[derive(Debug)]
struct SectionPlan {
    /// Non-branch instructions per slot block.
    body: u32,
    /// Body size of skipped "then" blocks.
    skip_body: u32,
    /// Instructions per dead (never-executed) gap block.
    gap_body: u32,
    /// Kernels, each a list of slots plus a trip count.
    kernels: Vec<KernelPlan>,
}

#[derive(Debug)]
struct KernelPlan {
    slots: Vec<Slot>,
    iters: IterCount,
}

/// Per-section synthesis state shared across a section's drift
/// windows: the bias-archetype picker and the Bresenham accumulators
/// must span *all* of a section's if-sites, or each (small) window
/// would restart the largest-remainder sequence and skew its local
/// site population toward the heaviest archetypes.
#[derive(Debug)]
struct SectionCtx {
    bias_picker: ProportionalPicker,
    backward_acc: f64,
    else_acc: f64,
}

impl SectionCtx {
    fn new(profile: &SectionProfile) -> Self {
        SectionCtx {
            bias_picker: ProportionalPicker::new(&profile.bias.weights()),
            backward_acc: 0.0,
            else_acc: 0.0,
        }
    }
}

fn plan_section(
    profile: &SectionProfile,
    mean_len: f64,
    rng: &mut SmallRng,
    ctx: &mut SectionCtx,
) -> SectionPlan {
    let bf = profile.branch_fraction;
    let mix_total = profile.mix.total();
    let f = |x: f64| x / mix_total;
    let f_cond = f(profile.mix.cond);
    let f_uncond = f(profile.mix.uncond);
    let f_call = f(profile.mix.call);
    let f_icall = f(profile.mix.indirect_call);
    let f_ibr = f(profile.mix.indirect_branch);
    let f_sys = f(profile.mix.syscall);

    let iters = profile.loops.mean_iterations;
    // Conditional branches per kernel iteration (1 back-edge + ifs +
    // ~1/iters from the burst-link branch).
    let cond_per_iter = 1.0 / profile.backedge_cond_share;
    let n_if = ((cond_per_iter - 1.0).round() as i64).max(0) as usize;
    // Total branch events per iteration implied by the mix.
    let t_total = cond_per_iter / f_cond.max(0.05);
    // Dispatch overhead already supplies ~1/(burst*iters) indirect
    // branches and ~1/iters unconditional/links per iteration.
    let burst = profile.burst_kernels;
    // Hub dispatch runs once per group-loop completion: negligible but
    // kept in the accounting for completeness.
    let dispatch_ibr = 1.0 / (burst * iters * GROUP_SIZE as f64);
    let n_ijump_f = (f_ibr * t_total - dispatch_ibr).max(0.0);
    let n_call_f = f_call * t_total;
    let n_icall_f = f_icall * t_total;
    let n_sys_f = f_sys * t_total;
    // Each indirect jump's selected target ends in an uncond jump most
    // of the time, and each if/else's taken arm ends in one; deduct both
    // from the uncond budget.
    let n_if_f = ((cond_per_iter - 1.0).max(0.0)).round();
    let else_unconds = profile.else_fraction * n_if_f * 0.5;
    let n_uncond_f = (f_uncond * t_total - n_ijump_f - else_unconds).max(0.0);

    // Per-iteration branch events (approximate).
    let t_real = 1.0
        + n_if as f64
        + n_uncond_f
        + 2.0 * (n_call_f + n_icall_f) // call + its return
        + 2.0 * n_ijump_f // hub + target jump
        + n_sys_f;
    // Instruction-carrying units per iteration: slot blocks, the
    // back-edge block, skipped then-blocks (~70% executed, half body),
    // callee bodies (double body), indirect-jump targets (~quarter body).
    let slots_per_kernel = n_if as f64 + n_uncond_f + n_call_f + n_icall_f + n_ijump_f + n_sys_f;
    let units = (slots_per_kernel + 1.0)
        + 0.35 * n_if as f64
        + 2.0 * (n_call_f + n_icall_f)
        + 0.25 * n_ijump_f;
    let insts_per_iter = t_real / bf;
    let body = (((insts_per_iter - t_real) / units).round() as i64).clamp(1, 220) as u32;
    let skip_body = body.max(1);

    // Kernel byte estimate -> kernel count filling the hot footprint.
    let block_bytes = f64::from(body) * mean_len + 6.0;
    let fanout = profile.indirect_fanout as f64;
    let kernel_bytes = (slots_per_kernel + 1.0) * block_bytes
        + n_if as f64 * (f64::from(skip_body) * mean_len)
        + n_ijump_f * fanout * (mean_len + 5.0)
        + n_if as f64 * profile.else_fraction * (f64::from(skip_body) * mean_len + 5.0)
        + 2.0 * block_bytes / burst; // link block share
    let hot_bytes = profile.hot_kb * 1024.0;
    let k = ((hot_bytes / kernel_bytes).round() as usize).clamp(1, MAX_KERNELS);

    // Distribute fractional slot counts across kernels.
    let totals = [
        (SlotKind::Uncond, n_uncond_f),
        (SlotKind::Call, n_call_f),
        (SlotKind::IndirectCall, n_icall_f),
        (SlotKind::IndirectJump, n_ijump_f),
        (SlotKind::Syscall, n_sys_f),
    ];
    let mut per_kernel_extra: Vec<Vec<SlotKind>> = vec![Vec::new(); k];
    for (kind, frac) in totals {
        let total = (frac * k as f64).round() as usize;
        for i in 0..total {
            // Spread evenly: slot i goes to kernel (i * stride) mod k.
            per_kernel_extra[(i * 7) % k].push(kind);
        }
    }

    let constant_count = (profile.loops.constant_fraction * k as f64).round() as usize;
    let mut kernels = Vec::with_capacity(k);
    for (ki, extra) in per_kernel_extra.iter().enumerate() {
        let mut slots = Vec::new();
        for _ in 0..n_if {
            let arch = ctx.bias_picker.pick();
            // Strongly-taken sites never jump backward (a ~97%-taken
            // backward branch would be an uncounted hot loop); all other
            // archetypes are eligible retry-loop sites.
            let backward = if arch != 0 {
                ctx.backward_acc += profile.backward_if_fraction;
                if ctx.backward_acc >= 1.0 {
                    ctx.backward_acc -= 1.0;
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if backward {
                // A backward site re-executes the kernel from its entry
                // every time it is taken, so its taken rate must stay
                // low or the re-execution compounds into an uncounted
                // hot loop.
                slots.push(Slot::If {
                    behavior: CondBehavior::Bernoulli {
                        p_taken: rng.gen_range(0.10..0.30),
                    },
                    backward: true,
                    has_else: false,
                });
                continue;
            }
            ctx.else_acc += profile.else_fraction;
            let has_else = if ctx.else_acc >= 1.0 {
                ctx.else_acc -= 1.0;
                true
            } else {
                false
            };
            slots.push(Slot::If {
                behavior: archetype_behavior(arch, rng),
                backward: false,
                has_else,
            });
        }
        for kind in extra {
            slots.push(match kind {
                SlotKind::Uncond => Slot::Uncond,
                SlotKind::Call => Slot::Call,
                SlotKind::IndirectCall => Slot::IndirectCall,
                SlotKind::IndirectJump => Slot::IndirectJump,
                SlotKind::Syscall => Slot::Syscall,
            });
        }
        // Deterministic interleave so calls/jumps are not clustered.
        if slots.len() > 1 {
            let n = slots.len();
            let mut inter = Vec::with_capacity(n);
            let mut a = 0usize;
            let mut bi = n - 1;
            let mut take_front = true;
            while a <= bi {
                if take_front {
                    inter.push(slots[a].clone());
                    a += 1;
                } else {
                    inter.push(slots[bi].clone());
                    if bi == 0 {
                        break;
                    }
                    bi -= 1;
                }
                take_front = !take_front;
            }
            slots = inter;
        }

        let mean = profile.loops.mean_iterations;
        let iters = if ki < constant_count {
            // Constant trip counts, varied per kernel around the mean.
            let n = (mean * (0.5 + 1.0 * (ki as f64 / constant_count.max(1) as f64)))
                .round()
                .max(2.0) as u32;
            IterCount::Fixed(n)
        } else if ki % 2 == 0 {
            IterCount::Geometric { mean }
        } else {
            let lo = (mean * 0.5).max(2.0) as u32;
            let hi = (mean * 1.5).max(3.0) as u32;
            IterCount::Uniform { lo, hi }
        };
        kernels.push(KernelPlan { slots, iters });
    }

    // The cold excursion guard lives in kernel 0 (and every 32nd kernel
    // for large sections). Probability tuned so excursions stay under
    // ~0.4% of dynamic instructions.
    let cold_func_insts = 12.0 * f64::from(body) + 12.0;
    let p_cold = (0.004 * insts_per_iter * iters / cold_func_insts / burst).clamp(1e-6, 0.02);
    for (ki, kernel) in kernels.iter_mut().enumerate() {
        if ki % 32 == 0 {
            kernel.slots.push(Slot::ColdExcursion { p: p_cold });
        }
    }

    // Dead layout: distribute `layout_slack` x executed bytes over the
    // gap carriers (if/else diamonds and unconditional jumps).
    let carriers = (n_if as f64 * profile.else_fraction + n_uncond_f).max(0.25);
    let gap_body = ((insts_per_iter * profile.layout_slack) / carriers).round() as u32;

    SectionPlan {
        body,
        skip_body,
        gap_body,
        kernels,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    Uncond,
    Call,
    IndirectCall,
    IndirectJump,
    Syscall,
}

/// Builds one section's dispatch hub, kernels, links, and excursion
/// stubs. Returns the section entry block (the hub).
#[allow(clippy::too_many_arguments)]
fn build_section(
    b: &mut ProgramBuilder,
    region: RegionId,
    profile: &SectionProfile,
    mean_len: f64,
    hot_funcs: &[BlockId],
    cold_funcs: &[BlockId],
    rng: &mut SmallRng,
    ctx: &mut SectionCtx,
) -> BlockId {
    let plan = plan_section(profile, mean_len, rng, ctx);
    let k = plan.kernels.len();
    let n_funcs = (profile.call_targets as usize).min(hot_funcs.len()).max(1);
    let funcs = &hot_funcs[..n_funcs];
    let fanout = profile.indirect_fanout as usize;

    // Reserve the dispatch structure at the region start: a top hub plus
    // group hubs when the kernel count exceeds one hub's fan-out. Their
    // bodies are defined after the kernels exist (indirect jumps have no
    // layout-adjacency constraints).
    let top_hub = b.reserve_block();
    let n_groups = k.div_ceil(GROUP_SIZE);
    let group_hubs: Vec<BlockId> = if n_groups > 1 {
        (0..n_groups).map(|_| b.reserve_block()).collect()
    } else {
        Vec::new()
    };

    // Excursion stubs are referenced from inside kernels; reserve now.
    let n_exc = plan
        .kernels
        .iter()
        .flat_map(|kp| &kp.slots)
        .filter(|s| matches!(s, Slot::ColdExcursion { .. }))
        .count();
    let stub_pairs: Vec<(BlockId, BlockId)> = (0..n_exc)
        .map(|_| (b.reserve_block(), b.reserve_block()))
        .collect();
    let mut next_stub = 0usize;
    let mut stub_continuations: Vec<(BlockId, BlockId, BlockId)> = Vec::new();

    let mut func_rr = 0usize;

    // Kernels are chained directly in layout order; at the end of every
    // GROUP_SIZE-kernel group, a group-loop branch re-walks the group a
    // few times (the mid-level reuse real call chains and phase loops
    // exhibit) before an unconditional pad returns to the dispatch hub.
    let mut kernel_firsts: Vec<BlockId> = Vec::with_capacity(k);
    let mut next_first = b.reserve_block();

    for (ki, kp) in plan.kernels.iter().enumerate() {
        let entry = next_first;
        kernel_firsts.push(entry);
        let mut cur = entry;
        let mut first = true;
        for slot in &kp.slots {
            match slot {
                Slot::If {
                    behavior,
                    backward,
                    has_else,
                } => {
                    if *has_else {
                        // if/else diamond: taken -> else arm, fall ->
                        // then arm (which jumps over the else arm). One
                        // arm is dead on every execution, and a dead
                        // layout gap sits between the arms.
                        let then_arm = b.reserve_block();
                        let gap = if plan.gap_body > 0 {
                            Some(b.reserve_block())
                        } else {
                            None
                        };
                        let else_arm = b.reserve_block();
                        let cont = b.reserve_block();
                        b.define_block(
                            cur,
                            region,
                            plan.body,
                            Terminator::Cond {
                                taken: else_arm,
                                fall: then_arm,
                                behavior: *behavior,
                            },
                        );
                        let after_then = gap.unwrap_or(else_arm);
                        b.define_block(
                            then_arm,
                            region,
                            plan.skip_body,
                            Terminator::Jump { target: cont },
                        );
                        let _ = after_then;
                        if let Some(g) = gap {
                            b.define_block(
                                g,
                                region,
                                plan.gap_body,
                                Terminator::FallThrough { next: else_arm },
                            );
                        }
                        b.define_block(
                            else_arm,
                            region,
                            plan.skip_body,
                            Terminator::FallThrough { next: cont },
                        );
                        cur = cont;
                    } else {
                        let skip = b.reserve_block();
                        let cont = b.reserve_block();
                        let taken_target = if *backward && !first { entry } else { cont };
                        b.define_block(
                            cur,
                            region,
                            plan.body,
                            Terminator::Cond {
                                taken: taken_target,
                                fall: skip,
                                behavior: *behavior,
                            },
                        );
                        b.define_block(
                            skip,
                            region,
                            plan.skip_body,
                            Terminator::FallThrough { next: cont },
                        );
                        cur = cont;
                    }
                }
                Slot::Call => {
                    let cont = b.reserve_block();
                    let callee = funcs[func_rr % funcs.len()];
                    func_rr += 1;
                    b.define_block(
                        cur,
                        region,
                        plan.body,
                        Terminator::Call {
                            callee,
                            ret_to: cont,
                        },
                    );
                    cur = cont;
                }
                Slot::IndirectCall => {
                    let cont = b.reserve_block();
                    let callees: Vec<BlockId> = (0..fanout.min(funcs.len()))
                        .map(|j| funcs[(func_rr + j) % funcs.len()])
                        .collect();
                    func_rr += 1;
                    b.define_block(
                        cur,
                        region,
                        plan.body,
                        Terminator::IndirectCall {
                            callees,
                            ret_to: cont,
                        },
                    );
                    cur = cont;
                }
                Slot::IndirectJump => {
                    let arms: Vec<BlockId> =
                        (0..fanout.max(2)).map(|_| b.reserve_block()).collect();
                    let cont = b.reserve_block();
                    b.define_block(
                        cur,
                        region,
                        plan.body,
                        Terminator::IndirectJump {
                            targets: arms.clone(),
                        },
                    );
                    for (i, &arm) in arms.iter().enumerate() {
                        let term = if i + 1 == arms.len() {
                            Terminator::FallThrough { next: cont }
                        } else {
                            Terminator::Jump { target: cont }
                        };
                        b.define_block(arm, region, 1, term);
                    }
                    cur = cont;
                }
                Slot::Uncond => {
                    // Jump over a never-executed gap block: scattered
                    // layout that dilutes wide-line usefulness the way
                    // desktop binaries do.
                    if plan.gap_body >= 1 {
                        let gap = b.reserve_block();
                        let cont = b.reserve_block();
                        b.define_block(cur, region, plan.body, Terminator::Jump { target: cont });
                        b.define_block(
                            gap,
                            region,
                            plan.gap_body,
                            Terminator::FallThrough { next: cont },
                        );
                        cur = cont;
                    } else {
                        let cont = b.reserve_block();
                        b.define_block(cur, region, plan.body, Terminator::Jump { target: cont });
                        cur = cont;
                    }
                }
                Slot::Syscall => {
                    let cont = b.reserve_block();
                    b.define_block(cur, region, plan.body, Terminator::Syscall { next: cont });
                    cur = cont;
                }
                Slot::ColdExcursion { p } => {
                    let cont = b.reserve_block();
                    let (stub, stub_ret) = stub_pairs[next_stub];
                    next_stub += 1;
                    stub_continuations.push((stub, stub_ret, cont));
                    b.define_block(
                        cur,
                        region,
                        plan.body,
                        Terminator::Cond {
                            taken: stub,
                            fall: cont,
                            behavior: CondBehavior::Bernoulli { p_taken: *p },
                        },
                    );
                    cur = cont;
                }
            }
            first = false;
        }

        // Back-edge block; its fall-through chains to the next kernel
        // or, at a group boundary, to the group-loop link.
        let group_end = (ki + 1) % GROUP_SIZE == 0 || ki + 1 == k;
        if group_end {
            let glink = b.reserve_block();
            let gpad = b.reserve_block();
            b.define_block(
                cur,
                region,
                plan.body,
                Terminator::Cond {
                    taken: entry,
                    fall: glink,
                    behavior: CondBehavior::Loop { count: kp.iters },
                },
            );
            let group_first = kernel_firsts[(ki / GROUP_SIZE) * GROUP_SIZE];
            // Two to three group re-walks: enough mid-range reuse for
            // the cache hierarchy without starving cross-group coverage.
            let lo = 2u32;
            let hi = 3u32;
            b.define_block(
                glink,
                region,
                1,
                Terminator::Cond {
                    taken: group_first,
                    fall: gpad,
                    behavior: CondBehavior::Loop {
                        count: IterCount::Uniform {
                            lo,
                            hi: hi.max(lo + 1),
                        },
                    },
                },
            );
            b.define_block(gpad, region, 1, Terminator::Jump { target: top_hub });
            if ki + 1 < k {
                next_first = b.reserve_block();
            }
        } else {
            next_first = b.reserve_block();
            b.define_block(
                cur,
                region,
                plan.body,
                Terminator::Cond {
                    taken: entry,
                    fall: next_first,
                    behavior: CondBehavior::Loop { count: kp.iters },
                },
            );
        }
    }

    // Dispatch hubs, now that every kernel's first block is known.
    // Uniform dispatch: every kernel is visited equally often, so the
    // section's I-cache working set is its full hot footprint.
    if group_hubs.is_empty() {
        b.define_block(
            top_hub,
            region,
            1,
            Terminator::IndirectJump {
                targets: kernel_firsts.clone(),
            },
        );
    } else {
        b.define_block(
            top_hub,
            region,
            1,
            Terminator::IndirectJump {
                targets: group_hubs.clone(),
            },
        );
        for (g, &gh) in group_hubs.iter().enumerate() {
            let lo = g * GROUP_SIZE;
            let hi = ((g + 1) * GROUP_SIZE).min(k);
            let targets: Vec<BlockId> = kernel_firsts[lo..hi].to_vec();
            b.define_block(gh, region, 1, Terminator::IndirectJump { targets });
        }
    }

    // Excursion stubs: indirect call into a rotating window of cold
    // functions, then jump back to the kernel continuation.
    for (i, (stub, stub_ret, cont)) in stub_continuations.iter().enumerate() {
        let lo = (i * COLD_FANOUT) % cold_funcs.len().max(1);
        let callees: Vec<BlockId> = (0..COLD_FANOUT.min(cold_funcs.len()))
            .map(|j| cold_funcs[(lo + j) % cold_funcs.len()])
            .collect();
        let callees = if callees.is_empty() {
            vec![*cont] // degenerate: no cold code; bounce off the cont
        } else {
            callees
        };
        b.define_block(
            *stub,
            region,
            1,
            Terminator::IndirectCall {
                callees,
                ret_to: *stub_ret,
            },
        );
        b.define_block(*stub_ret, region, 1, Terminator::Jump { target: *cont });
    }

    top_hub
}

/// Builds the serial/parallel phase schedule at the profile's default
/// instruction budget.
///
/// The legacy [`PhaseShape`] reproduces the original repeat-compressed
/// structure byte-for-byte; any other shape unrolls into an explicit
/// phase list with ramped per-epoch budgets (summing exactly to the
/// profile's budget) whose parallel epochs sweep across the drift
/// windows in `par_entries`.
fn build_schedule(
    profile: &WorkloadProfile,
    ser_entry: Option<BlockId>,
    par_entries: &[BlockId],
) -> Schedule {
    let total = profile.instructions;
    let serial_total = (profile.serial_fraction * total as f64).round() as u64;
    let parallel_total = total - serial_total;
    let par_entry = par_entries.first().copied();

    if profile.phases.is_legacy() {
        const REPS: u64 = 8;
        let mut phases = Vec::new();
        return match (ser_entry, par_entry) {
            (Some(s), Some(p)) => {
                let s_per = (serial_total / REPS).max(1);
                let p_per = (parallel_total / REPS).max(1);
                phases.push(Phase::new(Section::Serial, s, s_per));
                phases.push(Phase::new(Section::Parallel, p, p_per));
                Schedule::with_repeat(phases, REPS as u32)
            }
            (Some(s), None) => {
                phases.push(Phase::new(Section::Serial, s, total));
                Schedule::new(phases)
            }
            (None, Some(p)) => {
                phases.push(Phase::new(Section::Parallel, p, total));
                Schedule::new(phases)
            }
            (None, None) => unreachable!("serial_fraction is within [0,1]"),
        };
    }

    let shape = profile.phases;
    let epochs = shape.epochs as usize;
    let ser_budgets = ser_entry.map(|_| epoch_budgets(serial_total, shape.epochs, shape.ramp));
    let par_budgets = par_entry.map(|_| epoch_budgets(parallel_total, shape.epochs, shape.ramp));
    let windows = par_entries.len().max(1);
    let mut phases = Vec::new();
    for e in 0..epochs {
        if let (Some(s), Some(budgets)) = (ser_entry, &ser_budgets) {
            if budgets[e] > 0 {
                phases.push(Phase::new(Section::Serial, s, budgets[e]));
            }
        }
        if let Some(budgets) = &par_budgets {
            if budgets[e] > 0 {
                // Progressive sweep: epoch e runs inside window
                // floor(e * W / E), so the working set drifts across
                // the footprint over the run.
                let w = e * windows / epochs;
                phases.push(Phase::new(Section::Parallel, par_entries[w], budgets[e]));
            }
        }
    }
    Schedule::new(phases)
}

/// Cuts `total` instructions into `epochs` budgets whose sizes follow a
/// geometric ramp (`last/first == ramp`) and sum to exactly `total`.
fn epoch_budgets(total: u64, epochs: u32, ramp: f64) -> Vec<u64> {
    let n = epochs as usize;
    if n <= 1 {
        return vec![total];
    }
    let weights: Vec<f64> = (0..n)
        .map(|i| ramp.powf(i as f64 / (n - 1) as f64))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut budgets = Vec::with_capacity(n);
    let mut cumulative = 0.0f64;
    let mut assigned = 0u64;
    for w in &weights {
        cumulative += w / wsum * total as f64;
        let target = (cumulative.round() as u64).min(total);
        budgets.push(target - assigned);
        assigned = target;
    }
    if let Some(last) = budgets.last_mut() {
        *last += total - assigned;
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BackendProfile, BiasMix, BranchMix, LoopSpec, PhaseShape};
    use rebalance_trace::{Pintool, TraceEvent};
    use std::collections::BTreeSet;

    fn hpc_profile() -> WorkloadProfile {
        WorkloadProfile {
            serial: SectionProfile {
                branch_fraction: 0.15,
                mix: BranchMix::desktop(),
                bias: BiasMix::desktop(),
                backedge_cond_share: 0.30,
                backward_if_fraction: 0.3,
                else_fraction: 0.45,
                burst_kernels: 6.0,
                layout_slack: 0.4,
                hot_kb: 4.0,
                loops: LoopSpec::desktop(),
                call_targets: 8,
                indirect_fanout: 4,
            },
            parallel: SectionProfile {
                branch_fraction: 0.06,
                mix: BranchMix::hpc(),
                bias: BiasMix::hpc(),
                backedge_cond_share: 0.45,
                backward_if_fraction: 0.08,
                else_fraction: 0.15,
                burst_kernels: 6.0,
                layout_slack: 0.1,
                hot_kb: 2.0,
                loops: LoopSpec::hpc(),
                call_targets: 4,
                indirect_fanout: 4,
            },
            serial_fraction: 0.05,
            static_kb: 120.0,
            lib_kb: 0.0,
            instructions: 400_000,
            mean_inst_bytes: 5.2,
            backend: BackendProfile {
                base_cpi: 1.0,
                data_stall_cpi: 0.4,
            },
            phases: PhaseShape::legacy(),
        }
    }

    fn desktop_profile() -> WorkloadProfile {
        let mut p = hpc_profile();
        p.serial = SectionProfile {
            branch_fraction: 0.19,
            mix: BranchMix::desktop(),
            bias: BiasMix::desktop(),
            backedge_cond_share: 0.18,
            backward_if_fraction: 0.35,
            else_fraction: 0.65,
            burst_kernels: 12.0,
            layout_slack: 1.0,
            hot_kb: 60.0,
            loops: LoopSpec::desktop(),
            call_targets: 48,
            indirect_fanout: 6,
        };
        p.serial_fraction = 1.0;
        p.static_kb = 280.0;
        p.mean_inst_bytes = 3.5;
        p
    }

    #[derive(Default)]
    struct MixTool {
        insts: u64,
        branches: u64,
        cond: u64,
        taken: u64,
        calls: u64,
        rets: u64,
    }

    impl Pintool for MixTool {
        fn on_inst(&mut self, ev: &TraceEvent) {
            self.insts += 1;
            if let Some(br) = ev.branch {
                self.branches += 1;
                if br.outcome.is_taken() {
                    self.taken += 1;
                }
                use rebalance_isa::BranchKind::*;
                match br.kind {
                    CondDirect => self.cond += 1,
                    Call | IndirectCall => self.calls += 1,
                    Return => self.rets += 1,
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn synthesize_produces_valid_program() {
        let trace = synthesize("unit.hpc", &hpc_profile()).unwrap();
        assert!(trace.program().num_blocks() > 10);
        assert!(trace.program().static_bytes() > 0);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize("unit.det", &hpc_profile()).unwrap();
        let b = synthesize("unit.det", &hpc_profile()).unwrap();
        assert_eq!(a, b);
        let c = synthesize("unit.other", &hpc_profile()).unwrap();
        assert_ne!(a.seed(), c.seed());
    }

    #[test]
    fn branch_fraction_lands_near_target() {
        let profile = hpc_profile();
        let trace = synthesize("unit.bf", &profile).unwrap();
        let mut tool = MixTool::default();
        let s = trace.replay_section(Section::Parallel, &mut tool);
        assert!(s.instructions > 100_000);
        let bf = tool.branches as f64 / tool.insts as f64;
        let target = profile.parallel.branch_fraction;
        assert!(
            (bf - target).abs() / target < 0.30,
            "branch fraction {bf:.4} vs target {target:.4}"
        );
    }

    #[test]
    fn desktop_branch_fraction_higher_than_hpc() {
        let hpc = synthesize("unit.h", &hpc_profile()).unwrap();
        let desk = synthesize("unit.d", &desktop_profile()).unwrap();
        let run = |t: &SyntheticTrace| {
            let mut tool = MixTool::default();
            t.replay(&mut tool);
            tool.branches as f64 / tool.insts as f64
        };
        let h = run(&hpc);
        let d = run(&desk);
        assert!(
            d > 1.8 * h,
            "desktop bf {d:.3} should be well above hpc {h:.3}"
        );
    }

    #[test]
    fn returns_match_calls() {
        let trace = synthesize("unit.calls", &hpc_profile()).unwrap();
        let mut tool = MixTool::default();
        trace.replay(&mut tool);
        assert!(tool.calls > 0, "profile includes calls");
        let ratio = tool.rets as f64 / tool.calls as f64;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "returns ({}) should track calls ({})",
            tool.rets,
            tool.calls
        );
    }

    #[test]
    fn static_footprint_matches_profile() {
        let profile = hpc_profile();
        let trace = synthesize("unit.static", &profile).unwrap();
        let kb = trace.program().static_bytes() as f64 / 1024.0;
        assert!(
            (kb - profile.static_kb).abs() / profile.static_kb < 0.35,
            "static {kb:.1} KB vs target {} KB",
            profile.static_kb
        );
    }

    #[test]
    fn schedule_respects_serial_fraction() {
        let profile = hpc_profile();
        let trace = synthesize("unit.sched", &profile).unwrap();
        let sf = trace.schedule().serial_fraction();
        assert!((sf - profile.serial_fraction).abs() < 0.01);
        assert_eq!(trace.schedule().total_instructions(), profile.instructions);
    }

    #[test]
    fn pure_serial_profile_has_no_parallel_phase() {
        let trace = synthesize("unit.serial", &desktop_profile()).unwrap();
        assert!((trace.schedule().serial_fraction() - 1.0).abs() < 1e-12);
        assert!(trace
            .schedule()
            .phases()
            .iter()
            .all(|p| p.section == Section::Serial));
    }

    #[test]
    fn lib_region_created_when_lib_kb_positive() {
        let mut profile = hpc_profile();
        profile.lib_kb = 60.0;
        profile.static_kb = 200.0;
        let trace = synthesize("unit.lib", &profile).unwrap();
        let names: Vec<&str> = (0..trace.program().num_regions())
            .map(|i| {
                trace
                    .program()
                    .region_name(rebalance_trace::RegionId::new(i as u32))
            })
            .collect();
        assert!(names.contains(&"lib"));
    }

    #[test]
    fn proportional_picker_hits_exact_proportions() {
        let mut p = ProportionalPicker::new(&[0.5, 0.25, 0.25]);
        let mut counts = [0u32; 3];
        for _ in 0..400 {
            counts[p.pick()] += 1;
        }
        assert_eq!(counts, [200, 100, 100]);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn proportional_picker_rejects_zero_weights() {
        let _ = ProportionalPicker::new(&[0.0, 0.0]);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"CoMD"), fnv1a(b"CoGL"));
        assert_eq!(fnv1a(b"LULESH"), fnv1a(b"LULESH"));
    }

    #[test]
    fn epoch_budgets_sum_exactly_and_ramp() {
        for (total, epochs, ramp) in [
            (400_000u64, 8u32, 1.0f64),
            (400_000, 6, 3.0),
            (1_000_003, 5, 0.5),
            (17, 8, 2.0),
            (0, 4, 1.0),
            (100, 1, 4.0),
        ] {
            let budgets = epoch_budgets(total, epochs, ramp);
            assert_eq!(budgets.len(), epochs as usize);
            assert_eq!(
                budgets.iter().sum::<u64>(),
                total,
                "{total}/{epochs}/{ramp}"
            );
        }
        // A ramp > 1 makes later epochs strictly larger overall.
        let up = epoch_budgets(900_000, 6, 3.0);
        assert!(up.last().unwrap() > up.first().unwrap());
        assert!(
            (*up.last().unwrap() as f64 / *up.first().unwrap() as f64 - 3.0).abs() < 0.1,
            "last/first tracks the ramp: {up:?}"
        );
    }

    #[test]
    fn ramped_schedule_unrolls_with_exact_total() {
        let mut p = hpc_profile();
        p.phases = PhaseShape {
            epochs: 6,
            ramp: 3.0,
            drift_windows: 1,
        };
        let trace = synthesize("unit.ramp", &p).unwrap();
        let sched = trace.schedule();
        assert_eq!(sched.repeat(), 1, "non-legacy shapes unroll");
        assert_eq!(sched.total_instructions(), p.instructions);
        assert!((sched.serial_fraction() - p.serial_fraction).abs() < 0.01);
        // Parallel epoch budgets grow along the ramp.
        let par: Vec<u64> = sched
            .phases()
            .iter()
            .filter(|ph| ph.section == Section::Parallel)
            .map(|ph| ph.instructions)
            .collect();
        assert_eq!(par.len(), 6);
        assert!(par.last().unwrap() > par.first().unwrap());
    }

    #[test]
    fn drift_windows_split_the_parallel_footprint() {
        let mut p = hpc_profile();
        p.parallel.hot_kb = 6.0;
        p.phases = PhaseShape {
            epochs: 6,
            ramp: 1.0,
            drift_windows: 3,
        };
        let trace = synthesize("unit.drift", &p).unwrap();
        // Three parallel hot regions exist.
        let names: Vec<String> = (0..trace.program().num_regions())
            .map(|i| {
                trace
                    .program()
                    .region_name(rebalance_trace::RegionId::new(i as u32))
                    .to_owned()
            })
            .collect();
        assert!(names.iter().any(|n| n == "hot.parallel"));
        assert!(names.iter().any(|n| n == "hot.parallel.w1"));
        assert!(names.iter().any(|n| n == "hot.parallel.w2"));
        // The schedule's parallel epochs enter three distinct windows,
        // in sweep order.
        let entries: Vec<_> = trace
            .schedule()
            .phases()
            .iter()
            .filter(|ph| ph.section == Section::Parallel)
            .map(|ph| ph.entry)
            .collect();
        let distinct: BTreeSet<_> = entries.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "epochs sweep three windows");
        let mut sorted = entries.clone();
        sorted.sort();
        assert_eq!(entries, sorted, "windows are visited progressively");
        // Budget stays exact.
        assert_eq!(trace.schedule().total_instructions(), p.instructions);
    }

    #[test]
    fn tiny_footprints_clamp_drift_windows() {
        let mut p = hpc_profile();
        p.parallel.hot_kb = 1.0;
        p.phases = PhaseShape {
            epochs: 8,
            ramp: 1.0,
            drift_windows: 8,
        };
        assert_eq!(effective_drift_windows(&p), 2, "0.5 KB per window floor");
        let trace = synthesize("unit.clamp", &p).unwrap();
        assert_eq!(trace.schedule().total_instructions(), p.instructions);
    }

    #[test]
    fn legacy_shape_keeps_repeat_compressed_schedule() {
        let trace = synthesize("unit.legacy", &hpc_profile()).unwrap();
        assert_eq!(trace.schedule().repeat(), 8);
        assert_eq!(trace.schedule().phases().len(), 2);
    }

    #[test]
    fn invalid_profile_rejected() {
        let mut p = hpc_profile();
        p.serial_fraction = 2.0;
        assert!(synthesize("unit.bad", &p).is_err());
    }

    #[test]
    fn hot_footprint_dominates_dynamic_stream() {
        use std::collections::HashMap;
        let profile = hpc_profile();
        let trace = synthesize("unit.hot", &profile).unwrap();
        // Measure the bytes needed for 99% of dynamic instructions.
        let mut counts: HashMap<u64, (u64, u8)> = HashMap::new();
        struct Fp<'a>(&'a mut HashMap<u64, (u64, u8)>);
        impl Pintool for Fp<'_> {
            fn on_inst(&mut self, ev: &TraceEvent) {
                let e = self.0.entry(ev.pc.as_u64()).or_insert((0, ev.len));
                e.0 += 1;
            }
        }
        let mut tool = Fp(&mut counts);
        let total = trace
            .replay_section(Section::Parallel, &mut tool)
            .instructions;
        let mut by_count: Vec<(u64, u8)> = counts.values().copied().collect();
        by_count.sort_unstable_by_key(|&(c, _)| std::cmp::Reverse(c));
        let mut covered = 0u64;
        let mut bytes = 0u64;
        for (c, len) in by_count {
            if covered as f64 >= total as f64 * 0.99 {
                break;
            }
            covered += c;
            bytes += u64::from(len);
        }
        let kb = bytes as f64 / 1024.0;
        let target = profile.parallel.hot_kb;
        assert!(
            kb < target * 1.5 && kb > target * 0.2,
            "99% dynamic footprint {kb:.2} KB should be near {target} KB"
        );
    }
}
