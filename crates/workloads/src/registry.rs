//! The workload registry: named benchmarks with suite membership and
//! trace construction.

use std::fmt;

use rebalance_trace::{SyntheticTrace, TraceKey};
use serde::{Deserialize, Serialize};

use crate::profile::WorkloadProfile;
use crate::roster;
use crate::suite::Suite;
use crate::synth::{fnv1a, synthesis_seed, synthesize};

/// How much of the full dynamic instruction budget to simulate.
///
/// The paper instruments full benchmark runs (up to 100 G instructions in
/// Sniper); our experiments sample the steady state, which the synthetic
/// workloads reach almost immediately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// ~2% of the budget: CI-sized smoke runs.
    Smoke,
    /// ~25% of the budget: fast experimentation.
    Quick,
    /// The profile's full budget: paper-style numbers.
    #[default]
    Full,
    /// An explicit multiplier on the full budget.
    Custom(f64),
}

impl Scale {
    /// The multiplier applied to the profile's instruction budget.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Smoke => 0.02,
            Scale::Quick => 0.25,
            Scale::Full => 1.0,
            Scale::Custom(f) => f,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Smoke => f.write_str("smoke"),
            Scale::Quick => f.write_str("quick"),
            Scale::Full => f.write_str("full"),
            Scale::Custom(x) => write!(f, "custom({x})"),
        }
    }
}

/// A named benchmark: suite membership plus its calibrated profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: &'static str,
    suite: Suite,
    profile: WorkloadProfile,
}

impl Workload {
    pub(crate) fn new(name: &'static str, suite: Suite, profile: WorkloadProfile) -> Self {
        Workload {
            name,
            suite,
            profile,
        }
    }

    /// Benchmark name as the paper spells it.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Owning suite.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The calibrated statistical profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The cache identity of [`Workload::trace`] at the given scale:
    /// workload name, scale label, the synthesizer's name-derived seed,
    /// and a fingerprint of the full serialized profile. Editing a
    /// roster profile therefore changes the key, so an on-disk
    /// [`TraceCache`](rebalance_trace::TraceCache) misses stale
    /// snapshots instead of serving them.
    ///
    /// # Examples
    ///
    /// ```
    /// use rebalance_workloads::{find, Scale};
    ///
    /// let w = find("CG").unwrap();
    /// let smoke = w.trace_key(Scale::Smoke);
    /// assert_eq!(smoke.workload(), "CG");
    /// assert_ne!(
    ///     smoke.fingerprint(),
    ///     w.trace_key(Scale::Full).fingerprint(),
    ///     "scales address distinct cache entries"
    /// );
    /// ```
    pub fn trace_key(&self, scale: Scale) -> TraceKey {
        let profile_json = serde_json::to_string(&self.profile).expect("roster profiles serialize");
        TraceKey::new(
            self.name,
            scale.to_string(),
            synthesis_seed(self.name),
            fnv1a(profile_json.as_bytes()),
        )
    }

    /// Synthesizes the master-thread trace at the given scale.
    ///
    /// # Errors
    ///
    /// Returns an error if the profile fails validation (roster profiles
    /// are covered by tests and never do).
    pub fn trace(&self, scale: Scale) -> Result<SyntheticTrace, String> {
        let factor = scale.factor();
        if !(factor.is_finite() && factor > 0.0) {
            return Err(format!("invalid scale factor {factor}"));
        }
        let _synth_span = rebalance_telemetry::span("synth");
        let trace = synthesize(self.name, &self.profile)?;
        Ok(if (factor - 1.0).abs() < f64::EPSILON {
            trace
        } else {
            trace.scaled(factor)
        })
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.suite)
    }
}

/// The full roster in presentation order: the paper's 41 benchmarks
/// (ExMatEx, SPEC OMP, NPB, SPEC CPU INT) followed by the synthetic
/// kernel archetypes.
pub fn all() -> Vec<Workload> {
    let mut v = paper_roster();
    v.extend(kernels());
    v
}

/// The paper's 41 calibrated benchmarks only.
pub fn paper_roster() -> Vec<Workload> {
    let mut v = roster::exmatex();
    v.extend(roster::spec_omp());
    v.extend(roster::npb());
    v.extend(roster::spec_int());
    v
}

/// The synthetic kernel-archetype workloads (the `Suite::Kernels`
/// roster), generated from [`KernelSpec`](crate::KernelSpec)s.
pub fn kernels() -> Vec<Workload> {
    crate::kernels::KernelSpec::all()
        .iter()
        .map(|s| s.workload())
        .collect()
}

/// The 29 HPC benchmarks.
pub fn hpc() -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite().is_hpc()).collect()
}

/// All benchmarks of one suite.
pub fn by_suite(suite: Suite) -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite() == suite).collect()
}

/// Looks a benchmark up by (case-insensitive) name.
pub fn find(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_counts_match_paper() {
        assert_eq!(paper_roster().len(), 41);
        assert_eq!(hpc().len(), 29);
        assert_eq!(by_suite(Suite::ExMatEx).len(), 8);
        assert_eq!(by_suite(Suite::SpecOmp).len(), 11);
        assert_eq!(by_suite(Suite::Npb).len(), 10);
        assert_eq!(by_suite(Suite::SpecCpuInt).len(), 12);
        // The full roster adds the kernel archetypes on top.
        assert!(by_suite(Suite::Kernels).len() >= 6);
        assert_eq!(all().len(), 41 + by_suite(Suite::Kernels).len());
        assert_eq!(kernels().len(), by_suite(Suite::Kernels).len());
        // Every suite in the taxonomy has at least one workload.
        for suite in Suite::ALL {
            assert!(!by_suite(suite).is_empty(), "{suite} has no workloads");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for w in all() {
            assert!(names.insert(w.name().to_lowercase()), "dup {}", w.name());
        }
    }

    #[test]
    fn every_profile_validates() {
        for w in all() {
            w.profile()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        }
    }

    #[test]
    fn every_workload_synthesizes_at_smoke_scale() {
        for w in all() {
            let trace = w
                .trace(Scale::Smoke)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert!(trace.schedule().total_instructions() > 0, "{}", w.name());
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert_eq!(find("lulesh").unwrap().name(), "LULESH");
        assert_eq!(find("XALANCBMK").unwrap().name(), "xalancbmk");
        assert!(find("quake3").is_none());
    }

    #[test]
    fn scale_factors() {
        assert!(Scale::Smoke.factor() < Scale::Quick.factor());
        assert!(Scale::Quick.factor() < Scale::Full.factor());
        assert_eq!(Scale::Full.factor(), 1.0);
        assert_eq!(Scale::Custom(2.0).factor(), 2.0);
        assert_eq!(Scale::default(), Scale::Full);
        assert_eq!(Scale::Smoke.to_string(), "smoke");
        assert_eq!(Scale::Custom(0.5).to_string(), "custom(0.5)");
    }

    #[test]
    fn invalid_scale_rejected() {
        let w = find("CoMD").unwrap();
        assert!(w.trace(Scale::Custom(0.0)).is_err());
        assert!(w.trace(Scale::Custom(f64::NAN)).is_err());
    }

    #[test]
    fn scaled_trace_shrinks_budget() {
        let w = find("CoMD").unwrap();
        let full = w.profile().instructions;
        let t = w.trace(Scale::Quick).unwrap();
        let got = t.schedule().total_instructions();
        let expect = full as f64 * 0.25;
        assert!(
            (got as f64 - expect).abs() / expect < 0.05,
            "{got} vs {expect}"
        );
    }

    #[test]
    fn spec_int_is_fully_serial_and_hpc_mostly_parallel() {
        for w in by_suite(Suite::SpecCpuInt) {
            assert!(
                (w.profile().serial_fraction - 1.0).abs() < 1e-12,
                "{}",
                w.name()
            );
        }
        for w in hpc() {
            assert!(w.profile().serial_fraction < 0.5, "{}", w.name());
        }
    }

    #[test]
    fn trace_keys_are_stable_and_distinct() {
        let cg = find("CG").unwrap();
        assert_eq!(
            cg.trace_key(Scale::Smoke),
            cg.trace_key(Scale::Smoke),
            "keys are deterministic"
        );
        assert_eq!(
            cg.trace_key(Scale::Smoke).seed(),
            cg.trace(Scale::Smoke).unwrap().seed(),
            "key seed matches the synthesized trace's seed"
        );
        let mut fingerprints = std::collections::HashSet::new();
        for w in all() {
            assert!(
                fingerprints.insert(w.trace_key(Scale::Quick).fingerprint()),
                "{} collides",
                w.name()
            );
        }
        assert_ne!(
            cg.trace_key(Scale::Custom(0.5)).scale(),
            cg.trace_key(Scale::Custom(0.25)).scale()
        );
    }

    #[test]
    fn display_includes_suite() {
        let w = find("FT").unwrap();
        assert_eq!(w.to_string(), "FT [NPB]");
    }
}
