//! The 41-benchmark roster with per-benchmark calibration.
//!
//! Numbers are calibrated to the paper's characterization:
//!
//! * **Figure 1** — branch fraction per suite (ExMatEx ≈13%, SPEC OMP and
//!   NPB ≈7%, SPEC CPU INT ≈19%; serial ≈3× parallel inside HPC apps).
//! * **Figure 2** — bias spectrum (HPC 80–90% of dynamic conditionals
//!   strongly biased; desktop spread out).
//! * **Table I** — backward share of taken conditionals (HPC ≈69–80%,
//!   desktop ≈56%).
//! * **Figure 3** — static footprints (SPEC OMP/NPB ≈121 KB average, UA
//!   max ≈252 KB; ExMatEx ≈242 KB average, VPFFT ≈800 KB via libraries)
//!   and 99% dynamic footprints (most HPC 1–4 KB, a few 12–24 KB,
//!   desktop ≈60–140 KB).
//! * **Figure 4** — basic-block bytes (HPC ≈4× desktop; BT ≈312 B, swim
//!   ≈152 B, LULESH ≈126 B; CoHMM/CoSP/botsspar/CG/IS ≈32 B).
//! * **Section III-D** — serial instruction fractions at 8 threads
//!   (CoEVP ≈35%, LULESH ≈11%, CoSP ≈9%, CoMD ≈8%, nab/fma3d ≈4%,
//!   others <1%).

use crate::profile::{
    BackendProfile, BiasMix, BranchMix, LoopSpec, PhaseShape, SectionProfile, WorkloadProfile,
};
use crate::registry::Workload;
use crate::suite::Suite;

/// Default full-scale instruction budget per workload.
const DEFAULT_INSTS: u64 = 4_000_000;

/// Parallel-section template for HPC codes.
fn hpc_parallel(bf: f64, hot_kb: f64, iters: f64, constf: f64) -> SectionProfile {
    SectionProfile {
        branch_fraction: bf,
        mix: BranchMix::hpc(),
        bias: BiasMix::hpc(),
        backedge_cond_share: 0.45,
        backward_if_fraction: 0.08,
        else_fraction: 0.15,
        burst_kernels: 6.0,
        layout_slack: 0.10,
        hot_kb,
        loops: LoopSpec {
            mean_iterations: iters,
            constant_fraction: constf,
        },
        call_targets: 6,
        indirect_fanout: 4,
    }
}

/// Serial-section template for HPC codes: a desktop-leaning master
/// thread between parallel regions.
fn hpc_serial(bf: f64, hot_kb: f64) -> SectionProfile {
    SectionProfile {
        branch_fraction: bf,
        mix: BranchMix {
            cond: 0.74,
            uncond: 0.075,
            call: 0.075,
            indirect_call: 0.004,
            indirect_branch: 0.006,
            syscall: 0.001,
        },
        bias: BiasMix {
            strongly_taken: 0.12,
            strongly_not_taken: 0.48,
            moderately_taken: 0.08,
            moderately_not_taken: 0.08,
            balanced: 0.04,
            patterned: 0.20,
        },
        backedge_cond_share: 0.30,
        backward_if_fraction: 0.22,
        else_fraction: 0.45,
        burst_kernels: 8.0,
        layout_slack: 0.45,
        hot_kb,
        loops: LoopSpec {
            mean_iterations: 14.0,
            constant_fraction: 0.35,
        },
        call_targets: 10,
        indirect_fanout: 4,
    }
}

/// Desktop (SPEC CPU INT) section template.
fn desktop_section(bf: f64, hot_kb: f64, call_targets: u32) -> SectionProfile {
    SectionProfile {
        branch_fraction: bf,
        mix: BranchMix::desktop(),
        bias: BiasMix::desktop(),
        backedge_cond_share: 0.22,
        backward_if_fraction: 0.45,
        else_fraction: 0.65,
        burst_kernels: 12.0,
        layout_slack: 1.1,
        hot_kb,
        loops: LoopSpec::desktop(),
        call_targets,
        indirect_fanout: 4,
    }
}

/// Bundles everything into a workload.
#[allow(clippy::too_many_arguments)]
fn wl(
    name: &'static str,
    suite: Suite,
    serial: SectionProfile,
    parallel: SectionProfile,
    serial_fraction: f64,
    static_kb: f64,
    lib_kb: f64,
    mean_inst_bytes: f64,
    backend: BackendProfile,
) -> Workload {
    Workload::new(
        name,
        suite,
        WorkloadProfile {
            serial,
            parallel,
            serial_fraction,
            static_kb,
            lib_kb,
            instructions: DEFAULT_INSTS,
            mean_inst_bytes,
            backend,
            phases: PhaseShape::legacy(),
        },
    )
}

fn be(base_cpi: f64, data_stall_cpi: f64) -> BackendProfile {
    BackendProfile {
        base_cpi,
        data_stall_cpi,
    }
}

/// ExMatEx proxy applications (8).
///
/// Recent codes with real library dependencies: larger footprints, more
/// branches, less biased control flow than SPEC OMP/NPB, and visible
/// serial sections.
pub(crate) fn exmatex() -> Vec<Workload> {
    let mut v = Vec::with_capacity(8);

    // CoMD: molecular dynamics; 8% serial, moderate footprint; basic
    // blocks 2x longer in parallel than serial code.
    v.push(wl(
        "CoMD",
        Suite::ExMatEx,
        hpc_serial(0.17, 8.0),
        hpc_parallel(0.09, 6.0, 40.0, 0.5),
        0.08,
        180.0,
        40.0,
        5.0,
        be(1.0, 0.45),
    ));

    // CoEVP: constitutive evaluation via proxy; the serial-bottleneck
    // workload (35% serial at 8 threads), visible indirect calls
    // (up to 2.5% of branches), large library footprint.
    let mut coevp_par = hpc_parallel(0.11, 12.0, 28.0, 0.4);
    coevp_par.mix.indirect_call = 0.012;
    coevp_par.mix.indirect_branch = 0.013;
    coevp_par.bias = BiasMix {
        strongly_taken: 0.16,
        strongly_not_taken: 0.57,
        moderately_taken: 0.05,
        moderately_not_taken: 0.06,
        balanced: 0.04,
        patterned: 0.12,
    };
    let mut coevp_ser = hpc_serial(0.18, 18.0);
    coevp_ser.mix.indirect_call = 0.015;
    v.push(wl(
        "CoEVP",
        Suite::ExMatEx,
        coevp_ser,
        coevp_par,
        0.35,
        300.0,
        150.0,
        4.8,
        be(1.05, 0.55),
    ));

    // CoHMM: heterogeneous multiscale method; short basic blocks (~32B)
    // with short reuse distance.
    v.push(wl(
        "CoHMM",
        Suite::ExMatEx,
        hpc_serial(0.20, 6.0),
        hpc_parallel(0.16, 3.0, 24.0, 0.45),
        0.03,
        160.0,
        30.0,
        4.8,
        be(1.0, 0.5),
    ));

    // CoSP (CoSP2): sparse matrix proxy; 9% serial, short blocks.
    v.push(wl(
        "CoSP",
        Suite::ExMatEx,
        hpc_serial(0.19, 7.0),
        hpc_parallel(0.15, 3.5, 22.0, 0.4),
        0.09,
        150.0,
        25.0,
        4.8,
        be(1.0, 0.7),
    ));

    // CoGL: Ginzburg-Landau proxy; stresses the I-cache (hot region
    // around 18KB).
    v.push(wl(
        "CoGL",
        Suite::ExMatEx,
        hpc_serial(0.16, 9.0),
        hpc_parallel(0.10, 18.0, 36.0, 0.5),
        0.03,
        200.0,
        60.0,
        5.0,
        be(1.0, 0.5),
    ));

    // LULESH: shock hydro; long basic blocks (~126B), 11% serial,
    // 16KB-class hot loop nest.
    v.push(wl(
        "LULESH",
        Suite::ExMatEx,
        hpc_serial(0.13, 8.0),
        hpc_parallel(0.042, 16.0, 48.0, 0.6),
        0.11,
        120.0,
        20.0,
        5.4,
        be(0.95, 0.5),
    ));

    // VPFFT: crystal viscoplasticity over FFTW; enormous static
    // footprint from libraries (~800KB) but a compact hot loop.
    let mut vpfft_par = hpc_parallel(0.08, 8.0, 64.0, 0.7);
    vpfft_par.call_targets = 16;
    v.push(wl(
        "VPFFT",
        Suite::ExMatEx,
        hpc_serial(0.15, 10.0),
        vpfft_par,
        0.04,
        800.0,
        500.0,
        5.2,
        be(1.0, 0.6),
    ));

    // ASPA: adaptive sampling proxy app; moderate everything.
    v.push(wl(
        "ASPA",
        Suite::ExMatEx,
        hpc_serial(0.17, 7.0),
        hpc_parallel(0.12, 5.0, 30.0, 0.45),
        0.04,
        130.0,
        25.0,
        4.9,
        be(1.0, 0.5),
    ));

    v
}

/// SPEC OMP 2012 (11 of 14; the NPB-identical three are excluded).
pub(crate) fn spec_omp() -> Vec<Workload> {
    let mut v = Vec::with_capacity(11);

    // md: molecular dynamics; indirect jumps visible.
    let mut md_par = hpc_parallel(0.06, 2.5, 72.0, 0.7);
    md_par.mix.indirect_branch = 0.008;
    md_par.mix.indirect_call = 0.004;
    v.push(wl(
        "md",
        Suite::SpecOmp,
        hpc_serial(0.16, 2.0),
        md_par,
        0.008,
        96.0,
        0.0,
        5.3,
        be(0.95, 0.4),
    ));

    // bwaves: blast waves CFD; classic long-trip-count loops.
    v.push(wl(
        "bwaves",
        Suite::SpecOmp,
        hpc_serial(0.15, 1.5),
        hpc_parallel(0.05, 2.0, 96.0, 0.85),
        0.005,
        110.0,
        0.0,
        5.5,
        be(0.9, 0.6),
    ));

    // nab: molecular modelling; ~4% serial at 8 threads (grows with
    // thread count, Section III-D).
    v.push(wl(
        "nab",
        Suite::SpecOmp,
        hpc_serial(0.17, 3.0),
        hpc_parallel(0.075, 2.5, 48.0, 0.6),
        0.04,
        140.0,
        0.0,
        5.1,
        be(1.0, 0.45),
    ));

    // botsalgn: protein alignment (OpenMP tasks).
    v.push(wl(
        "botsalgn",
        Suite::SpecOmp,
        hpc_serial(0.17, 2.0),
        hpc_parallel(0.08, 2.0, 40.0, 0.55),
        0.01,
        100.0,
        0.0,
        5.0,
        be(1.0, 0.4),
    ));

    // botsspar: sparse LU (tasks); short blocks (~32B), loop BP nearly
    // eliminates its mispredictions (Figure 6).
    let mut botsspar_par = hpc_parallel(0.145, 2.0, 56.0, 0.9);
    botsspar_par.bias = BiasMix {
        strongly_taken: 0.10,
        strongly_not_taken: 0.74,
        moderately_taken: 0.04,
        moderately_not_taken: 0.05,
        balanced: 0.03,
        patterned: 0.04,
    };
    v.push(wl(
        "botsspar",
        Suite::SpecOmp,
        hpc_serial(0.18, 2.0),
        botsspar_par,
        0.012,
        105.0,
        0.0,
        4.9,
        be(1.0, 0.55),
    ));

    // ilbdc: lattice Boltzmann; extremely regular.
    v.push(wl(
        "ilbdc",
        Suite::SpecOmp,
        hpc_serial(0.14, 1.5),
        hpc_parallel(0.045, 1.5, 128.0, 0.9),
        0.005,
        90.0,
        0.0,
        5.5,
        be(0.9, 0.8),
    ));

    // fma3d: crash simulation; the I-cache-bound SPEC OMP outlier
    // (24KB-class hot region, 6% slowdown on the tailored core), ~4%
    // serial.
    v.push(wl(
        "fma3d",
        Suite::SpecOmp,
        hpc_serial(0.16, 6.0),
        hpc_parallel(0.085, 26.0, 36.0, 0.5),
        0.04,
        250.0,
        0.0,
        5.0,
        be(1.0, 0.5),
    ));

    // swim: shallow water; very long basic blocks (~152B).
    v.push(wl(
        "swim",
        Suite::SpecOmp,
        hpc_serial(0.13, 1.5),
        hpc_parallel(0.034, 2.0, 112.0, 0.9),
        0.005,
        85.0,
        0.0,
        5.6,
        be(0.9, 0.9),
    ));

    // imagick: image manipulation; loop BP eliminates mispredictions
    // (Figure 6).
    let mut imagick_par = hpc_parallel(0.09, 3.0, 64.0, 0.92);
    imagick_par.bias = BiasMix {
        strongly_taken: 0.12,
        strongly_not_taken: 0.70,
        moderately_taken: 0.05,
        moderately_not_taken: 0.05,
        balanced: 0.03,
        patterned: 0.05,
    };
    v.push(wl(
        "imagick",
        Suite::SpecOmp,
        hpc_serial(0.17, 2.5),
        imagick_par,
        0.01,
        150.0,
        0.0,
        4.9,
        be(1.0, 0.35),
    ));

    // smithwa: Smith-Waterman sequence alignment.
    v.push(wl(
        "smithwa",
        Suite::SpecOmp,
        hpc_serial(0.17, 2.0),
        hpc_parallel(0.10, 1.5, 52.0, 0.7),
        0.01,
        95.0,
        0.0,
        5.0,
        be(1.0, 0.4),
    ));

    // kdtree: k-d tree construction/search (recursive); indirect-branch
    // outlier of SPEC OMP.
    let mut kdtree_par = hpc_parallel(0.11, 3.0, 20.0, 0.3);
    kdtree_par.mix.indirect_branch = 0.010;
    kdtree_par.mix.indirect_call = 0.006;
    kdtree_par.bias = BiasMix {
        strongly_taken: 0.15,
        strongly_not_taken: 0.55,
        moderately_taken: 0.06,
        moderately_not_taken: 0.07,
        balanced: 0.06,
        patterned: 0.11,
    };
    v.push(wl(
        "kdtree",
        Suite::SpecOmp,
        hpc_serial(0.17, 3.0),
        kdtree_par,
        0.01,
        110.0,
        0.0,
        4.8,
        be(1.05, 0.5),
    ));

    v
}

/// NAS Parallel Benchmarks (10, class C-like behaviour).
pub(crate) fn npb() -> Vec<Workload> {
    let mut v = Vec::with_capacity(10);

    // NPB parallel code is the most loop-regular of the study: raise the
    // back-edge share so ~80% of taken conditionals jump backward.
    let npb_par = |bf: f64, hot: f64, iters: f64, constf: f64| {
        let mut s = hpc_parallel(bf, hot, iters, constf);
        s.backedge_cond_share = 0.52;
        s.backward_if_fraction = 0.06;
        s.layout_slack = 0.05;
        s
    };

    // BT: block tridiagonal; the longest basic blocks of the study
    // (~312B) and a 16KB-class hot region.
    v.push(wl(
        "BT",
        Suite::Npb,
        hpc_serial(0.12, 2.0),
        npb_par(0.018, 16.0, 80.0, 0.85),
        0.006,
        180.0,
        0.0,
        5.7,
        be(0.9, 0.6),
    ));

    // CG: conjugate gradient; short blocks (~32B), tight loops.
    v.push(wl(
        "CG",
        Suite::Npb,
        hpc_serial(0.17, 1.5),
        npb_par(0.14, 1.0, 96.0, 0.8),
        0.005,
        70.0,
        0.0,
        4.8,
        be(1.0, 0.9),
    ));

    // EP: embarrassingly parallel RNG; data-dependent loops that defeat
    // the loop BP (Figure 6), indirect jumps visible.
    let mut ep_par = npb_par(0.075, 1.5, 36.0, 0.05);
    ep_par.mix.indirect_branch = 0.007;
    ep_par.bias = BiasMix {
        strongly_taken: 0.12,
        strongly_not_taken: 0.58,
        moderately_taken: 0.06,
        moderately_not_taken: 0.08,
        balanced: 0.08,
        patterned: 0.08,
    };
    v.push(wl(
        "EP",
        Suite::Npb,
        hpc_serial(0.15, 1.5),
        ep_par,
        0.004,
        60.0,
        0.0,
        5.2,
        be(0.95, 0.3),
    ));

    // FT: 3-D FFT; the biggest Asymmetric++ winner (Figure 11).
    v.push(wl(
        "FT",
        Suite::Npb,
        hpc_serial(0.14, 1.5),
        npb_par(0.045, 2.5, 88.0, 0.85),
        0.006,
        95.0,
        0.0,
        5.4,
        be(0.9, 0.7),
    ));

    // IS: integer sort; short blocks, bucket loops.
    v.push(wl(
        "IS",
        Suite::Npb,
        hpc_serial(0.17, 1.0),
        npb_par(0.15, 1.0, 64.0, 0.7),
        0.004,
        55.0,
        0.0,
        4.7,
        be(1.0, 0.8),
    ));

    // LU: LU solver.
    v.push(wl(
        "LU",
        Suite::Npb,
        hpc_serial(0.13, 1.5),
        npb_par(0.04, 3.0, 96.0, 0.85),
        0.005,
        130.0,
        0.0,
        5.5,
        be(0.9, 0.6),
    ));

    // MG: multigrid.
    v.push(wl(
        "MG",
        Suite::Npb,
        hpc_serial(0.14, 1.5),
        npb_par(0.05, 2.5, 72.0, 0.8),
        0.005,
        100.0,
        0.0,
        5.4,
        be(0.9, 0.7),
    ));

    // SP: scalar pentadiagonal.
    v.push(wl(
        "SP",
        Suite::Npb,
        hpc_serial(0.13, 1.5),
        npb_par(0.035, 4.0, 88.0, 0.85),
        0.005,
        140.0,
        0.0,
        5.5,
        be(0.9, 0.6),
    ));

    // UA: unstructured adaptive mesh; the largest NPB static footprint
    // (~252KB) and visible indirect control flow.
    let mut ua_par = npb_par(0.06, 6.0, 48.0, 0.6);
    ua_par.mix.indirect_branch = 0.009;
    ua_par.mix.indirect_call = 0.005;
    v.push(wl(
        "UA",
        Suite::Npb,
        hpc_serial(0.15, 3.0),
        ua_par,
        0.008,
        252.0,
        0.0,
        5.2,
        be(1.0, 0.55),
    ));

    // DC: data cube; I/O flavoured, more syscalls than its siblings.
    let mut dc_par = npb_par(0.10, 3.0, 32.0, 0.5);
    dc_par.mix.syscall = 0.004;
    v.push(wl(
        "DC",
        Suite::Npb,
        hpc_serial(0.16, 2.5),
        dc_par,
        0.01,
        120.0,
        0.0,
        4.9,
        be(1.05, 0.8),
    ));

    v
}

/// SPEC CPU INT 2006 (12), run sequentially: `serial_fraction == 1` and
/// the parallel template is never scheduled.
pub(crate) fn spec_int() -> Vec<Workload> {
    let mut v = Vec::with_capacity(12);

    // The unused parallel slot must still validate.
    let unused_par = hpc_parallel(0.06, 2.0, 64.0, 0.7);

    let mut desk = |name: &'static str,
                    bf: f64,
                    hot_kb: f64,
                    call_targets: u32,
                    static_kb: f64,
                    backend: BackendProfile| {
        v.push(wl(
            name,
            Suite::SpecCpuInt,
            desktop_section(bf, hot_kb, call_targets),
            unused_par,
            1.0,
            static_kb,
            0.0,
            3.5,
            backend,
        ));
    };

    desk("perlbench", 0.21, 95.0, 72, 480.0, be(1.1, 0.5));
    desk("bzip2", 0.17, 33.0, 24, 120.0, be(1.0, 0.6));
    desk("gcc", 0.20, 140.0, 96, 900.0, be(1.1, 0.7));
    desk("mcf", 0.19, 15.0, 16, 60.0, be(1.0, 2.4));
    desk("gobmk", 0.20, 120.0, 80, 500.0, be(1.1, 0.5));
    desk("hmmer", 0.16, 36.0, 24, 140.0, be(0.95, 0.4));
    desk("sjeng", 0.21, 70.0, 48, 220.0, be(1.05, 0.5));
    desk("libquantum", 0.15, 12.0, 12, 60.0, be(0.95, 1.6));
    desk("h264ref", 0.17, 18.0, 24, 280.0, be(1.0, 0.5));
    desk("omnetpp", 0.20, 85.0, 64, 350.0, be(1.1, 1.2));
    desk("astar", 0.19, 40.0, 24, 110.0, be(1.05, 1.0));
    desk("xalancbmk", 0.21, 130.0, 88, 600.0, be(1.1, 0.8));

    // h264ref behaves well on small front-ends in the paper (Figure 11):
    // give it a more biased mix than its siblings.
    let h264 = v
        .iter_mut()
        .find(|w| w.name() == "h264ref")
        .expect("just inserted");
    let mut p = h264.profile().clone();
    p.serial.bias = BiasMix {
        strongly_taken: 0.14,
        strongly_not_taken: 0.46,
        moderately_taken: 0.10,
        moderately_not_taken: 0.10,
        balanced: 0.10,
        patterned: 0.10,
    };
    p.serial.loops = LoopSpec {
        mean_iterations: 16.0,
        constant_fraction: 0.55,
    };
    *h264 = Workload::new("h264ref", Suite::SpecCpuInt, p);

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean<F: Fn(&Workload) -> f64>(ws: &[Workload], f: F) -> f64 {
        ws.iter().map(&f).sum::<f64>() / ws.len() as f64
    }

    #[test]
    fn suite_sizes() {
        assert_eq!(exmatex().len(), 8);
        assert_eq!(spec_omp().len(), 11);
        assert_eq!(npb().len(), 10);
        assert_eq!(spec_int().len(), 12);
    }

    #[test]
    fn branch_fraction_targets_fig1() {
        // Parallel-weighted branch fraction per suite vs Figure 1.
        let bf = |w: &Workload| {
            let p = w.profile();
            p.serial_fraction * p.serial.branch_fraction
                + (1.0 - p.serial_fraction) * p.parallel.branch_fraction
        };
        let ex = mean(&exmatex(), bf);
        let omp = mean(&spec_omp(), bf);
        let npb_ = mean(&npb(), bf);
        let int = mean(&spec_int(), bf);
        assert!((0.10..=0.16).contains(&ex), "ExMatEx bf {ex}");
        assert!((0.05..=0.10).contains(&omp), "SPEC OMP bf {omp}");
        assert!((0.05..=0.10).contains(&npb_), "NPB bf {npb_}");
        assert!((0.16..=0.22).contains(&int), "SPEC INT bf {int}");
        assert!(int > 2.0 * omp, "desktop ~3x HPC parallel");
    }

    #[test]
    fn serial_fractions_match_section_iiid() {
        let get = |name: &str| {
            exmatex()
                .into_iter()
                .chain(spec_omp())
                .find(|w| w.name() == name)
                .unwrap()
                .profile()
                .serial_fraction
        };
        assert!((get("CoEVP") - 0.35).abs() < 0.01);
        assert!((get("CoMD") - 0.08).abs() < 0.01);
        assert!((get("CoSP") - 0.09).abs() < 0.01);
        assert!((get("LULESH") - 0.11).abs() < 0.01);
        assert!((get("nab") - 0.04).abs() < 0.01);
        assert!((get("fma3d") - 0.04).abs() < 0.01);
        // The rest of SPEC OMP is below 1.2%.
        for w in spec_omp() {
            if !["nab", "fma3d"].contains(&w.name()) {
                assert!(w.profile().serial_fraction <= 0.012, "{}", w.name());
            }
        }
    }

    #[test]
    fn static_footprints_match_fig3() {
        let st = |w: &Workload| w.profile().static_kb;
        let ex = mean(&exmatex(), st);
        let omp_npb: Vec<Workload> = spec_omp().into_iter().chain(npb()).collect();
        let on = mean(&omp_npb, st);
        assert!((200.0..=300.0).contains(&ex), "ExMatEx static avg {ex}");
        assert!((90.0..=160.0).contains(&on), "SPEC OMP+NPB static avg {on}");
        // Named extremes.
        let vpfft = exmatex().into_iter().find(|w| w.name() == "VPFFT").unwrap();
        assert_eq!(vpfft.profile().static_kb, 800.0);
        let ua = npb().into_iter().find(|w| w.name() == "UA").unwrap();
        assert_eq!(ua.profile().static_kb, 252.0);
        // Desktop static footprints are larger on average.
        let int = mean(&spec_int(), st);
        assert!(int > 1.2 * ex, "SPEC INT static avg {int}");
    }

    #[test]
    fn hot_footprints_match_fig3() {
        // Parallel 99% dynamic footprint: HPC average ~14KB but most
        // benchmarks small (1-4KB).
        let hpc: Vec<Workload> = exmatex()
            .into_iter()
            .chain(spec_omp())
            .chain(npb())
            .collect();
        let avg = mean(&hpc, |w| w.profile().parallel.hot_kb);
        assert!((4.0..=16.0).contains(&avg), "HPC parallel hot avg {avg}");
        let small = hpc
            .iter()
            .filter(|w| w.profile().parallel.hot_kb <= 4.0)
            .count();
        assert!(small >= 15, "most HPC hot loops are tiny, got {small}");
        // Desktop hot footprints are an order of magnitude larger.
        let int_avg = mean(&spec_int(), |w| w.profile().serial.hot_kb);
        assert!((40.0..=100.0).contains(&int_avg), "INT hot avg {int_avg}");
    }

    #[test]
    fn bbl_bytes_match_fig4_extremes() {
        // BBL bytes ~= mean_inst_bytes / branch_fraction.
        let bbl = |w: &Workload| w.profile().mean_inst_bytes / w.profile().parallel.branch_fraction;
        let bt = npb().into_iter().find(|w| w.name() == "BT").unwrap();
        assert!(bbl(&bt) > 250.0, "BT blocks ~312B, got {}", bbl(&bt));
        let swim = spec_omp().into_iter().find(|w| w.name() == "swim").unwrap();
        assert!((130.0..=200.0).contains(&bbl(&swim)), "swim {}", bbl(&swim));
        let lulesh = exmatex()
            .into_iter()
            .find(|w| w.name() == "LULESH")
            .unwrap();
        assert!(
            (100.0..=160.0).contains(&bbl(&lulesh)),
            "LULESH {}",
            bbl(&lulesh)
        );
        // Desktop blocks ~4x shorter than HPC parallel.
        let int_bbl = mean(&spec_int(), |w| {
            w.profile().mean_inst_bytes / w.profile().serial.branch_fraction
        });
        let hpc: Vec<Workload> = exmatex()
            .into_iter()
            .chain(spec_omp())
            .chain(npb())
            .collect();
        let hpc_bbl = mean(&hpc, bbl);
        assert!(
            hpc_bbl > 3.0 * int_bbl,
            "HPC BBL {hpc_bbl:.0}B vs desktop {int_bbl:.0}B"
        );
    }

    #[test]
    fn npb_is_most_backward_biased() {
        for w in npb() {
            assert!(
                w.profile().parallel.backedge_cond_share >= 0.5,
                "{}",
                w.name()
            );
        }
        for w in spec_int() {
            assert!(
                w.profile().serial.backedge_cond_share <= 0.25,
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn indirect_outliers_are_marked() {
        // Paper: indirect jumps rare except EP, UA, md, kdtree, CoEVP.
        let all: Vec<Workload> = exmatex()
            .into_iter()
            .chain(spec_omp())
            .chain(npb())
            .collect();
        for name in ["EP", "UA", "md", "kdtree", "CoEVP"] {
            let w = all.iter().find(|w| w.name() == name).unwrap();
            let p = w.profile().parallel;
            assert!(
                p.mix.indirect_branch + p.mix.indirect_call >= 0.006,
                "{name} should be an indirect outlier"
            );
        }
        let plain = all.iter().find(|w| w.name() == "swim").unwrap();
        let p = plain.profile().parallel;
        assert!(p.mix.indirect_branch + p.mix.indirect_call < 0.006);
    }

    #[test]
    fn exmatex_carries_library_code() {
        for w in exmatex() {
            assert!(w.profile().lib_kb > 0.0, "{}", w.name());
        }
        for w in spec_omp().into_iter().chain(npb()) {
            assert_eq!(w.profile().lib_kb, 0.0, "{}", w.name());
        }
    }

    #[test]
    fn hpc_instructions_are_longer_than_desktop() {
        for w in exmatex().into_iter().chain(spec_omp()).chain(npb()) {
            assert!(w.profile().mean_inst_bytes >= 4.5, "{}", w.name());
        }
        for w in spec_int() {
            assert!(w.profile().mean_inst_bytes <= 4.0, "{}", w.name());
        }
    }

    #[test]
    fn mcf_is_memory_bound() {
        let mcf = spec_int().into_iter().find(|w| w.name() == "mcf").unwrap();
        assert!(mcf.profile().backend.data_stall_cpi > 2.0);
    }
}
