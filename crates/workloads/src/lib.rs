//! Benchmark roster, statistical profiles, and the CFG synthesizer.
//!
//! This crate is the study's stand-in for the benchmark binaries: 29 HPC
//! applications (ExMatEx, SPEC OMP 2012, NPB) and 12 desktop applications
//! (SPEC CPU INT 2006), each described by a [`WorkloadProfile`] calibrated
//! to the paper's measured characteristics, plus the [`Suite::Kernels`]
//! roster of parameterized kernel archetypes ([`KernelSpec`]) and a
//! synthesizer that turns a profile into a deterministic
//! [`SyntheticTrace`].
//!
//! # Examples
//!
//! ```
//! use rebalance_workloads::{Scale, Suite, Workload};
//!
//! assert_eq!(rebalance_workloads::paper_roster().len(), 41);
//! assert!(rebalance_workloads::kernels().len() >= 6);
//! let comd = rebalance_workloads::find("CoMD").expect("CoMD is in the roster");
//! assert_eq!(comd.suite(), Suite::ExMatEx);
//! let trace = comd.trace(Scale::Smoke).expect("valid profile");
//! assert!(trace.schedule().total_instructions() > 0);
//! let spmv = rebalance_workloads::find("k.spmv").expect("kernel archetype");
//! assert_eq!(spmv.suite(), Suite::Kernels);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod kernels;
mod profile;
mod registry;
mod roster;
mod suite;
mod synth;

pub use kernels::{KernelArchetype, KernelSpec};
pub use profile::{
    BackendProfile, BiasMix, BranchMix, LoopSpec, PhaseShape, SectionProfile, WorkloadProfile,
};
pub use registry::{all, by_suite, find, hpc, kernels, paper_roster, Scale, Workload};
pub use suite::{Suite, SuiteClass};
pub use synth::synthesize;

// Re-exported so downstream crates rarely need a direct dependency on the
// trace crate just to consume workloads.
pub use rebalance_trace::{Section, SyntheticTrace, TraceCache, TraceKey};
