//! Process-wide telemetry: a metrics registry and a hierarchical span
//! tree, both built for associative cross-process merging.
//!
//! The sweep pipeline runs the same work in three shapes — single
//! process, executor threads, and `--workers N` shards — and a
//! measurement is only trustworthy if all three report it identically.
//! Everything in this crate is therefore designed around one algebra:
//! snapshots form a commutative monoid under [`MetricsSnapshot::merged`]
//! with [`MetricsSnapshot::default`] as the identity, mirroring how the
//! sweep layer folds per-shard `Report`s.
//!
//! Two primitives:
//!
//! * **Registry metrics** — [`Counter`], [`Gauge`], and [`Histogram`]
//!   handles addressable by stable dotted names (`cache.hits`,
//!   `replay.batches.wide`). Handles are cheap `Arc`s over atomics;
//!   call sites cache them in `OnceLock` statics so the hot path is a
//!   single relaxed atomic op.
//! * **Spans** — [`span`] returns an RAII guard over a monotonic clock.
//!   Nested guards build a per-thread timing tree with **no global
//!   locks on the hot path**: a thread only touches the shared tree
//!   when its outermost span closes, merging its whole local subtree
//!   in one lock acquisition.
//!
//! Collection is off by default. It latches on when the
//! [`METRICS_ENV`] environment variable is set (to anything but `0` or
//! empty) or when [`set_enabled`] is called; while off, every
//! instrumentation call reduces to one relaxed atomic load and a
//! branch.
//!
//! Naming scheme: dotted lowercase segments, most-general first
//! (`cache.lock_wait_ns`). Metrics whose *value* is a duration carry a
//! `_ns` suffix; shard-merge comparisons treat those as
//! machine-dependent and compare them structurally, never by value.
//! Counters merge by sum; gauges record configuration-like values
//! (e.g. batch capacity) and merge by max so that a shard fold does
//! not multiply them by the worker count; histograms merge
//! bucket-wise.
//!
//! # Examples
//!
//! ```
//! use rebalance_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! let events = telemetry::counter("demo.events");
//! {
//!     let _outer = telemetry::span("outer");
//!     let _inner = telemetry::span("inner");
//!     events.add(3);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counters["demo.events"], 3);
//! let outer = &snap.spans.children["outer"];
//! assert_eq!(outer.children["inner"].count, 1);
//! assert!(snap.check_attribution().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

/// Environment variable that latches telemetry collection on for the
/// whole process (any value except empty or `0`).
pub const METRICS_ENV: &str = "REBALANCE_METRICS";

/// Version stamp written into [`MetricsSnapshot::to_json`] output.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Number of log2 buckets in every [`Histogram`].
pub const HIST_BUCKETS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENABLED_INIT: Once = Once::new();

fn init_enabled() {
    ENABLED_INIT.call_once(|| {
        if let Ok(v) = std::env::var(METRICS_ENV) {
            if !v.is_empty() && v != "0" {
                ENABLED.store(true, Ordering::Relaxed);
            }
        }
    });
}

/// Whether telemetry collection is currently on.
///
/// The first call consults [`METRICS_ENV`]; afterwards this is a single
/// relaxed atomic load, cheap enough for per-event call sites.
#[inline]
pub fn enabled() -> bool {
    init_enabled();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off for the whole process, overriding the
/// environment latch. Typically called once by a CLI front-end after
/// flag parsing, before any instrumented work runs.
pub fn set_enabled(on: bool) {
    init_enabled();
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Registry metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` metric. Merges by sum.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter (no-op while collection is off).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter (no-op while collection is off).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins `i64` metric for configuration-like values
/// (thread counts, batch capacity). Merges by **max**, not sum: a
/// fold over `N` shards must not multiply a shard-invariant value by
/// `N`.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Records `v` (no-op while collection is off).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A `u64` histogram with [`HIST_BUCKETS`] fixed log2 buckets: bucket
/// `i` counts observations whose bit width is `i` (values in
/// `[2^(i-1), 2^i)`), with zero landing in bucket 0 and anything with
/// the top bit set clamped into the last bucket. Merges bucket-wise.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    /// Records one observation (no-op while collection is off).
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.0.count.fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(v, Ordering::Relaxed);
            self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns the process-wide counter registered under `name`, creating
/// it on first use. The handle is a cheap clone; cache it in a
/// `OnceLock` at hot call sites to skip the registry lock.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().expect("counter registry");
    map.entry(name.to_string())
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// Returns the process-wide gauge registered under `name`, creating it
/// on first use.
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().expect("gauge registry");
    map.entry(name.to_string())
        .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
        .clone()
}

/// Returns the process-wide histogram registered under `name`,
/// creating it on first use.
pub fn histogram(name: &str) -> Histogram {
    let mut map = registry().histograms.lock().expect("histogram registry");
    map.entry(name.to_string())
        .or_insert_with(|| {
            Histogram(Arc::new(HistogramInner {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }))
        })
        .clone()
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One node of the merged span tree: total inclusive nanoseconds,
/// number of completed spans, and child nodes keyed by span name.
///
/// Self-time is implicit: `total_ns` minus the sum of child totals is
/// the time attributed to this node's own code. Construction
/// guarantees the children never sum past the parent (they are
/// strictly nested on one thread), and [`SpanNode::absorb`] preserves
/// that invariant node-by-node — [`MetricsSnapshot::check_attribution`]
/// verifies it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Total inclusive time across all completed spans at this node.
    pub total_ns: u64,
    /// How many spans completed at this node.
    pub count: u64,
    /// Child spans, keyed by name, in deterministic order.
    pub children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    /// Merges `other` into `self`: totals and counts add, children
    /// merge recursively. Associative and commutative, with the empty
    /// node as identity.
    pub fn absorb(&mut self, other: &SpanNode) {
        self.total_ns += other.total_ns;
        self.count += other.count;
        for (name, child) in &other.children {
            self.children.entry(name.clone()).or_default().absorb(child);
        }
    }

    /// True when nothing has been recorded at or below this node.
    pub fn is_empty(&self) -> bool {
        self.total_ns == 0 && self.count == 0 && self.children.is_empty()
    }

    /// Inclusive time minus the children's totals: the time spent in
    /// this span's own code.
    pub fn self_ns(&self) -> u64 {
        let kids: u64 = self.children.values().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(kids)
    }
}

#[derive(Default)]
struct LocalSpans {
    stack: Vec<(&'static str, Instant)>,
    root: SpanNode,
}

thread_local! {
    static LOCAL: RefCell<LocalSpans> = RefCell::new(LocalSpans::default());
}

fn global_spans() -> &'static Mutex<SpanNode> {
    static GLOBAL: OnceLock<Mutex<SpanNode>> = OnceLock::new();
    GLOBAL.get_or_init(Mutex::default)
}

fn absorbed() -> &'static Mutex<MetricsSnapshot> {
    static ABSORBED: OnceLock<Mutex<MetricsSnapshot>> = OnceLock::new();
    ABSORBED.get_or_init(Mutex::default)
}

/// RAII guard returned by [`span`]; records the elapsed time into the
/// thread-local tree when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let flush = LOCAL.with(|cell| {
            let mut local = cell.borrow_mut();
            let LocalSpans { stack, root } = &mut *local;
            let (name, start) = stack.pop()?;
            let elapsed = start.elapsed().as_nanos() as u64;
            let mut node = &mut *root;
            for (ancestor, _) in stack.iter() {
                node = node.children.entry((*ancestor).to_string()).or_default();
            }
            let leaf = node.children.entry(name.to_string()).or_default();
            leaf.total_ns += elapsed;
            leaf.count += 1;
            if stack.is_empty() {
                Some(std::mem::take(root))
            } else {
                None
            }
        });
        // Only the outermost span on a thread pays the global lock,
        // and it carries the whole finished subtree in one absorb.
        if let Some(tree) = flush {
            global_spans().lock().expect("span tree").absorb(&tree);
        }
    }
}

/// Opens a named span on the current thread. While collection is off
/// this returns an inert guard (one atomic load, no clock read).
///
/// Spans nest lexically: guards dropped in reverse creation order form
/// parent/child edges in the merged tree. Each thread accumulates into
/// a private tree and merges it into the process tree only when its
/// outermost span closes.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    LOCAL.with(|cell| cell.borrow_mut().stack.push((name, Instant::now())));
    SpanGuard { active: true }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram: total count, value sum, and
/// [`HIST_BUCKETS`] log2 bucket counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts (`buckets[i]` holds values of bit
    /// width `i`; see [`Histogram`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(other.buckets.len());
        let mut buckets = vec![0u64; len];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets.get(i).copied().unwrap_or(0)
                + other.buckets.get(i).copied().unwrap_or(0);
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            buckets,
        }
    }

    /// Upper bound of the highest nonzero bucket (`2^i`), or 0 when
    /// the histogram is empty. A cheap tail indicator for rendering.
    pub fn max_bound(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            Some(0) | None => 0,
            Some(i) if i >= 63 => u64::MAX,
            Some(i) => 1u64 << i,
        }
    }
}

/// A mergeable point-in-time copy of every metric and the full span
/// tree. This is the unit shipped from `__worker` shards to the
/// coordinator and written to `metrics.json`.
///
/// Snapshots form a commutative monoid: [`MetricsSnapshot::merged`] is
/// associative, and [`MetricsSnapshot::default`] is its identity —
/// the same laws the sweep layer relies on when folding shard
/// `Report`s, so telemetry from `--workers N` is bit-stable against a
/// single-process run for every machine-independent metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name (zero-valued counters are omitted).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (zero-valued gauges are omitted).
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Root of the span tree. The root itself is synthetic
    /// (`count == 0`); real spans start at its children.
    pub spans: SpanNode,
}

impl MetricsSnapshot {
    /// Merges two snapshots: counters add, gauges take the max,
    /// histograms add bucket-wise, span trees merge recursively.
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in &other.counters {
            *out.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let slot = out.gauges.entry(name.clone()).or_insert(*v);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            let slot = out.histograms.entry(name.clone()).or_default();
            *slot = slot.merged(h);
        }
        out.spans.absorb(&other.spans);
        out
    }

    /// True when the snapshot holds no metrics and no spans.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Verifies the attribution invariant on every recorded span: a
    /// node's children may never account for more time than the node
    /// itself measured, so every nanosecond belongs to exactly one
    /// leaf (self-time counts as an implicit leaf). Mirrors
    /// `FetchReport::check_attribution`.
    pub fn check_attribution(&self) -> Result<(), String> {
        fn walk(path: &str, node: &SpanNode) -> Result<(), String> {
            let kids: u64 = node.children.values().map(|c| c.total_ns).sum();
            if node.count > 0 && kids > node.total_ns {
                return Err(format!(
                    "span {path}: children account for {kids}ns but the span only measured {}ns",
                    node.total_ns
                ));
            }
            for (name, child) in &node.children {
                let child_path = if path.is_empty() {
                    name.clone()
                } else {
                    format!("{path}/{name}")
                };
                walk(&child_path, child)?;
            }
            Ok(())
        }
        walk("", &self.spans)
    }

    /// Serializes the snapshot as versioned JSON (the `metrics.json`
    /// schema). Keys are sorted, output is deterministic.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn span_json(node: &SpanNode, out: &mut String) {
            let _ = write!(
                out,
                "{{\"total_ns\":{},\"count\":{}",
                node.total_ns, node.count
            );
            if !node.children.is_empty() {
                out.push_str(",\"children\":{");
                for (i, (name, child)) in node.children.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", esc(name));
                    span_json(child, out);
                }
                out.push('}');
            }
            out.push('}');
        }

        let mut out = String::new();
        let _ = write!(out, "{{\"version\":{SNAPSHOT_VERSION}");
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", esc(name), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", esc(name), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                esc(name),
                h.count,
                h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("},\"spans\":");
        span_json(&self.spans, &mut out);
        out.push('}');
        out
    }

    /// Renders the span tree and top counters as an indented text
    /// block, the `--metrics text` output.
    pub fn render_text(&self) -> String {
        fn ms(ns: u64) -> String {
            format!("{:.3}ms", ns as f64 / 1e6)
        }
        fn tree(node: &SpanNode, depth: usize, out: &mut String) {
            for (name, child) in &node.children {
                let label = format!("{}{}", "  ".repeat(depth), name);
                let _ = writeln!(
                    out,
                    "  {label:<32} {:>12} x{}",
                    ms(child.total_ns),
                    child.count
                );
                tree(child, depth + 1, out);
            }
        }

        let mut out = String::new();
        out.push_str("telemetry\n");
        if !self.spans.children.is_empty() {
            out.push_str("spans (inclusive time, completions):\n");
            tree(&self.spans, 0, &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("top counters:\n");
            let mut rows: Vec<(&String, &u64)> = self.counters.iter().collect();
            rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            const SHOWN: usize = 24;
            for (name, v) in rows.iter().take(SHOWN) {
                let _ = writeln!(out, "  {name:<32} {v:>14}");
            }
            if rows.len() > SHOWN {
                let _ = writeln!(out, "  ... and {} more", rows.len() - SHOWN);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<32} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} count={} sum={} max<{}",
                    h.count,
                    h.sum,
                    h.max_bound()
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Process-level collection
// ---------------------------------------------------------------------------

/// Captures everything recorded so far: the live registry, the merged
/// span tree (including this thread's finished spans), and every
/// snapshot previously [`absorb`]ed from other processes.
///
/// Zero-valued counters/gauges and empty histograms are omitted so
/// that which handles happened to be *registered* (vs actually used)
/// never shows up in merge comparisons.
pub fn snapshot() -> MetricsSnapshot {
    // Flush this thread's finished spans so a snapshot taken right
    // after the top-level span closes sees it.
    let local = LOCAL.with(|cell| std::mem::take(&mut cell.borrow_mut().root));
    if !local.is_empty() {
        global_spans().lock().expect("span tree").absorb(&local);
    }

    let mut snap = absorbed().lock().expect("absorbed snapshots").clone();
    let reg = registry();
    for (name, c) in reg.counters.lock().expect("counter registry").iter() {
        let v = c.value();
        if v > 0 {
            *snap.counters.entry(name.clone()).or_insert(0) += v;
        }
    }
    for (name, g) in reg.gauges.lock().expect("gauge registry").iter() {
        let v = g.value();
        if v != 0 {
            let slot = snap.gauges.entry(name.clone()).or_insert(v);
            *slot = (*slot).max(v);
        }
    }
    for (name, h) in reg.histograms.lock().expect("histogram registry").iter() {
        let hs = h.snapshot();
        if hs.count > 0 {
            let slot = snap.histograms.entry(name.clone()).or_default();
            *slot = slot.merged(&hs);
        }
    }
    snap.spans
        .absorb(&global_spans().lock().expect("span tree"));
    snap
}

/// Merges a snapshot from another process (a `__worker` shard) into
/// this process's collection; [`snapshot`] folds it back out with the
/// same associative merge the sweep layer uses for `Report`s.
pub fn absorb(snap: &MetricsSnapshot) {
    let mut held = absorbed().lock().expect("absorbed snapshots");
    let merged = held.merged(snap);
    *held = merged;
}

/// Clears every counter, gauge, histogram, the span tree, and all
/// absorbed snapshots. For benches and tests that measure deltas.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("counter registry").values() {
        c.0.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.lock().expect("gauge registry").values() {
        g.0.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.lock().expect("histogram registry").values() {
        h.reset();
    }
    *global_spans().lock().expect("span tree") = SpanNode::default();
    *absorbed().lock().expect("absorbed snapshots") = MetricsSnapshot::default();
    LOCAL.with(|cell| cell.borrow_mut().root = SpanNode::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry + span state is process-global; tests that touch it
    // serialize on this lock (pure merge-law tests don't need it).
    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_are_inert_while_disabled() {
        let _g = test_guard();
        reset();
        set_enabled(false);
        let c = counter("test.disabled");
        c.add(5);
        c.incr();
        assert_eq!(c.value(), 0);
        set_enabled(true);
        c.add(2);
        assert_eq!(c.value(), 2);
        set_enabled(false);
        reset();
    }

    #[test]
    fn histogram_buckets_follow_bit_width() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);

        let _g = test_guard();
        reset();
        set_enabled(true);
        let h = histogram("test.hist");
        for v in [0, 1, 2, 3, 1024] {
            h.observe(v);
        }
        let hs = h.snapshot();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1030);
        assert_eq!(hs.buckets[0], 1);
        assert_eq!(hs.buckets[1], 1);
        assert_eq!(hs.buckets[2], 2);
        assert_eq!(hs.buckets[11], 1);
        assert_eq!(hs.max_bound(), 2048);
        set_enabled(false);
        reset();
    }

    #[test]
    fn spans_nest_and_pass_attribution() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
                std::hint::black_box(0u64);
            }
        }
        let snap = snapshot();
        let outer = &snap.spans.children["outer"];
        assert_eq!(outer.count, 1);
        let inner = &outer.children["inner"];
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(snap.check_attribution().is_ok());
        set_enabled(false);
        reset();
    }

    #[test]
    fn threads_merge_into_one_tree() {
        let _g = test_guard();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _sp = span("worker");
                    let _in = span("step");
                });
            }
        });
        let snap = snapshot();
        assert_eq!(snap.spans.children["worker"].count, 4);
        assert_eq!(snap.spans.children["worker"].children["step"].count, 4);
        assert!(snap.check_attribution().is_ok());
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_guard();
        reset();
        set_enabled(false);
        {
            let _sp = span("ghost");
        }
        assert!(snapshot().spans.is_empty());
        reset();
    }

    #[test]
    fn absorb_feeds_snapshot() {
        let _g = test_guard();
        reset();
        let mut external = MetricsSnapshot::default();
        external.counters.insert("shard.counter".into(), 7);
        external.gauges.insert("shard.gauge".into(), 3);
        absorb(&external);
        absorb(&external);
        let snap = snapshot();
        assert_eq!(snap.counters["shard.counter"], 14);
        assert_eq!(snap.gauges["shard.gauge"], 3); // max, not sum
        reset();
    }

    #[test]
    fn attribution_violation_is_reported() {
        let mut snap = MetricsSnapshot::default();
        let mut parent = SpanNode {
            total_ns: 10,
            count: 1,
            children: BTreeMap::new(),
        };
        parent.children.insert(
            "child".into(),
            SpanNode {
                total_ns: 11,
                count: 1,
                children: BTreeMap::new(),
            },
        );
        snap.spans.children.insert("parent".into(), parent);
        let err = snap.check_attribution().unwrap_err();
        assert!(err.contains("parent"), "{err}");
        assert!(err.contains("11ns"), "{err}");
    }

    #[test]
    fn json_is_versioned_and_deterministic() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("b.two".into(), 2);
        snap.counters.insert("a.one".into(), 1);
        snap.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 1,
                sum: 5,
                buckets: vec![0, 0, 0, 1],
            },
        );
        snap.spans.children.insert(
            "root".into(),
            SpanNode {
                total_ns: 42,
                count: 1,
                children: BTreeMap::new(),
            },
        );
        let json = snap.to_json();
        assert!(json.starts_with("{\"version\":1"), "{json}");
        // Sorted keys: a.one before b.two.
        assert!(json.find("a.one").unwrap() < json.find("b.two").unwrap());
        assert!(json.contains("\"spans\":{\"total_ns\":0,\"count\":0,\"children\":{\"root\":{\"total_ns\":42,\"count\":1}}}"));
        assert_eq!(json, snap.clone().to_json());
    }

    #[test]
    fn render_text_lists_spans_and_counters() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("cache.hits".into(), 9);
        snap.spans.children.insert(
            "sweep".into(),
            SpanNode {
                total_ns: 2_000_000,
                count: 1,
                children: BTreeMap::new(),
            },
        );
        let text = snap.render_text();
        assert!(text.contains("sweep"), "{text}");
        assert!(text.contains("2.000ms"), "{text}");
        assert!(text.contains("cache.hits"), "{text}");
    }

    #[test]
    fn merge_identity_and_units() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 3);
        a.gauges.insert("g".into(), -2);
        a.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 2,
                sum: 9,
                buckets: vec![0, 1, 1],
            },
        );
        let id = MetricsSnapshot::default();
        assert_eq!(a.merged(&id), a);
        assert_eq!(id.merged(&a), a);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a snapshot from generated (slot, value) pairs: slots map
    /// onto a small fixed name space so merges actually collide.
    fn snap_from(parts: &[(u8, u16)]) -> MetricsSnapshot {
        const NAMES: [&str; 4] = ["a.x", "a.y_ns", "b.x", "b.z"];
        let mut snap = MetricsSnapshot::default();
        for &(slot, v) in parts {
            let name = NAMES[(slot % 4) as usize];
            match slot % 3 {
                0 => *snap.counters.entry(name.into()).or_insert(0) += v as u64,
                1 => {
                    let slot = snap.gauges.entry(name.into()).or_insert(v as i64);
                    *slot = (*slot).max(v as i64);
                }
                _ => {
                    let h = snap.histograms.entry(name.into()).or_default();
                    let mut one = HistogramSnapshot {
                        count: 1,
                        sum: v as u64,
                        buckets: vec![0; HIST_BUCKETS],
                    };
                    one.buckets[super::bucket_index(v as u64)] = 1;
                    *h = h.merged(&one);
                }
            }
            // Give the span tree a couple of colliding paths too.
            let mut node = SpanNode {
                total_ns: v as u64 + 1,
                count: 1,
                children: BTreeMap::new(),
            };
            if slot % 2 == 0 {
                node.children.insert(
                    "leaf".into(),
                    SpanNode {
                        total_ns: (v as u64) / 2,
                        count: 1,
                        children: BTreeMap::new(),
                    },
                );
            }
            snap.spans
                .children
                .entry(name.into())
                .or_default()
                .absorb(&node);
        }
        snap
    }

    proptest! {
        #[test]
        fn merge_is_associative(
            xs in proptest::collection::vec((0u8..12, 0u16..1000), 0..20),
            ys in proptest::collection::vec((0u8..12, 0u16..1000), 0..20),
            zs in proptest::collection::vec((0u8..12, 0u16..1000), 0..20),
        ) {
            let (a, b, c) = (snap_from(&xs), snap_from(&ys), snap_from(&zs));
            prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        }

        #[test]
        fn default_is_the_merge_identity(
            xs in proptest::collection::vec((0u8..12, 0u16..1000), 0..30),
        ) {
            let a = snap_from(&xs);
            let id = MetricsSnapshot::default();
            prop_assert_eq!(a.merged(&id), a.clone());
            prop_assert_eq!(id.merged(&a), a);
        }

        #[test]
        fn merge_is_commutative(
            xs in proptest::collection::vec((0u8..12, 0u16..1000), 0..20),
            ys in proptest::collection::vec((0u8..12, 0u16..1000), 0..20),
        ) {
            let (a, b) = (snap_from(&xs), snap_from(&ys));
            prop_assert_eq!(a.merged(&b), b.merged(&a));
        }

        #[test]
        fn merge_preserves_attribution(
            xs in proptest::collection::vec((0u8..12, 0u16..1000), 0..20),
            ys in proptest::collection::vec((0u8..12, 0u16..1000), 0..20),
        ) {
            let (a, b) = (snap_from(&xs), snap_from(&ys));
            prop_assert!(a.check_attribution().is_ok());
            prop_assert!(a.merged(&b).check_attribution().is_ok());
        }
    }
}
