//! Ablation studies for the design choices DESIGN.md calls out, plus
//! the thread-scaling argument of Section III-D.

use rebalance_coresim::CmpSim;
use rebalance_frontend::predictor::{
    DirectionPredictor, PredictorSim, Tage, TageConfig, Tournament, WithLoop,
};
use rebalance_frontend::{BtbConfig, BtbSim, CacheConfig, ICacheSim};
use rebalance_mcpat::CmpFloorplan;
use rebalance_workloads::{Scale, Workload};
use serde::{Deserialize, Serialize};

use crate::util::{self, f2, TextTable};

/// One labelled measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Configuration label.
    pub label: String,
    /// Primary metric (MPKI or normalized time, per study).
    pub value: f64,
    /// Secondary metric (usefulness, budget bytes...), when meaningful.
    pub aux: f64,
}

/// A completed ablation study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// Study name.
    pub name: String,
    /// What `value`/`aux` mean.
    pub metrics: (String, String),
    /// Measured points.
    pub points: Vec<AblationPoint>,
}

impl Ablation {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "configuration",
            self.metrics.0.as_str(),
            self.metrics.1.as_str(),
        ]);
        for p in &self.points {
            t.row(vec![p.label.clone(), f2(p.value), f2(p.aux)]);
        }
        format!("Ablation: {}\n{}", self.name, t.render())
    }
}

fn workload(name: &str) -> Workload {
    rebalance_workloads::find(name).expect("ablation roster name")
}

/// Ablation 1: loop-BP entry count (16..256) on a loop-heavy workload,
/// all variants fanned out over a single replay.
/// The paper's 64-entry/512 B choice should sit at the knee.
pub fn lbp_entries(scale: Scale) -> Ablation {
    let w = workload("imagick");
    let variants = [0usize, 16, 64, 256];
    let sims: Vec<PredictorSim<Box<dyn DirectionPredictor>>> = variants
        .iter()
        .map(|&entries| {
            let predictor: Box<dyn DirectionPredictor> = if entries == 0 {
                Box::new(Tournament::new(10, 8))
            } else {
                Box::new(WithLoop::with_entries(Tournament::new(10, 8), entries))
            };
            PredictorSim::new(predictor)
        })
        .collect();
    let (sims, _) = util::fan_out(&w, scale, sims);
    let points = variants
        .iter()
        .zip(&sims)
        .map(|(&entries, sim)| {
            let report = sim.report();
            AblationPoint {
                label: if entries == 0 {
                    "no LBP".into()
                } else {
                    format!("{entries}-entry LBP")
                },
                value: report.total().mpki(),
                aux: (report.budget_bits / 8) as f64,
            }
        })
        .collect();
    Ablation {
        name: "loop-BP entries (imagick, small tournament base)".into(),
        metrics: ("branch MPKI".into(), "budget bytes".into()),
        points,
    }
}

/// Ablation 2: TAGE tagged-table count at fixed per-table size.
/// The paper's small TAGE keeps only two tables (histories 4 and 16).
pub fn tage_tables(scale: Scale) -> Ablation {
    let w = workload("CoEVP");
    let histories: [&[u32]; 4] = [
        &[4, 16],
        &[4, 11, 30, 81],
        &[4, 7, 11, 18, 30, 49, 81, 134],
        &[4, 7, 11, 18, 30, 49, 81, 134, 221, 365, 512, 640],
    ];
    let sims: Vec<PredictorSim<Tage>> = histories
        .iter()
        .map(|hist| {
            PredictorSim::new(Tage::new(TageConfig {
                bimodal_bits: 12,
                table_bits: 7,
                histories: hist.to_vec(),
                tag_bits: 9,
            }))
        })
        .collect();
    let (sims, _) = util::fan_out(&w, scale, sims);
    let points = histories
        .iter()
        .zip(&sims)
        .map(|(hist, sim)| {
            let r = sim.report();
            AblationPoint {
                label: format!("{} tagged tables", hist.len()),
                value: r.total().mpki(),
                aux: (r.budget_bits / 8) as f64,
            }
        })
        .collect();
    Ablation {
        name: "TAGE tagged-table count (CoEVP)".into(),
        metrics: ("branch MPKI".into(), "budget bytes".into()),
        points,
    }
}

/// Ablation 3: wide lines vs narrow lines + an explicit next-line
/// prefetcher (the paper argues a wide line *is* a prefetch buffer).
pub fn line_vs_prefetch(scale: Scale) -> Ablation {
    let w = workload("LULESH");
    let configs: [(&str, CacheConfig, bool); 3] = [
        ("16KB/64B", CacheConfig::new(16 * 1024, 64, 8), false),
        (
            "16KB/64B + next-line PF",
            CacheConfig::new(16 * 1024, 64, 8),
            true,
        ),
        ("16KB/128B", CacheConfig::new(16 * 1024, 128, 8), false),
    ];
    let sims: Vec<ICacheSim> = configs
        .iter()
        .map(|&(_, cfg, prefetch)| {
            let sim = ICacheSim::new(cfg);
            if prefetch {
                sim.with_next_line_prefetch()
            } else {
                sim
            }
        })
        .collect();
    let (sims, _) = util::fan_out(&w, scale, sims);
    let points = configs
        .iter()
        .zip(&sims)
        .map(|(&(label, _, _), sim)| {
            let r = sim.report();
            AblationPoint {
                label: label.into(),
                value: r.total().mpki(),
                aux: r.usefulness,
            }
        })
        .collect();
    Ablation {
        name: "wide lines vs next-line prefetch (LULESH)".into(),
        metrics: ("I-cache MPKI".into(), "usefulness".into()),
        points,
    }
}

/// Ablation 4: BTB associativity at 256 entries — the paper notes high
/// associativity is needed with simple modulo indexing (ExMatEx).
pub fn btb_associativity(scale: Scale) -> Ablation {
    let w = workload("CoEVP");
    let assocs = [1usize, 2, 4, 8];
    let sims: Vec<BtbSim> = assocs
        .iter()
        .map(|&assoc| BtbSim::new(BtbConfig::new(256, assoc)))
        .collect();
    let (sims, _) = util::fan_out(&w, scale, sims);
    let points = assocs
        .iter()
        .zip(&sims)
        .map(|(&assoc, sim)| {
            let r = sim.report();
            AblationPoint {
                label: format!("256-entry {assoc}-way"),
                value: r.total().mpki(),
                aux: r.total().miss_rate(),
            }
        })
        .collect();
    Ablation {
        name: "BTB associativity at 256 entries (CoEVP)".into(),
        metrics: ("BTB MPKI".into(), "miss rate".into()),
        points,
    }
}

/// Section III-D scaling study: as core counts grow, serial sections
/// dominate and the asymmetric design's advantage over an all-tailored
/// chip grows with them.
pub fn thread_scaling(scale: Scale) -> Ablation {
    let workload = workload("CoEVP");
    let core_counts = [8usize, 16, 32, 64];
    // All eight floorplans reuse one trace replay: the core designs are
    // the same two at every core count, only the scheduling arithmetic
    // changes.
    let sims: Vec<CmpSim> = core_counts
        .iter()
        .flat_map(|&cores| {
            [
                CmpSim::new(CmpFloorplan::tailored(cores)),
                CmpSim::new(CmpFloorplan::asymmetric(1, cores - 1)),
            ]
        })
        .collect();
    let results = util::floorplans(&sims, &workload, scale);
    let points = core_counts
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(&cores, pair)| {
            let (tailored, asym) = (&pair[0], &pair[1]);
            AblationPoint {
                label: format!("{cores} cores"),
                value: tailored.time_s / asym.time_s,
                aux: asym.serial_time_s / asym.time_s,
            }
        })
        .collect();
    Ablation {
        name: "asymmetric advantage vs core count (CoEVP, 35% serial)".into(),
        metrics: (
            "tailored/asymmetric time".into(),
            "serial share of time".into(),
        ),
        points,
    }
}

/// Runs every ablation.
pub fn run_all(scale: Scale) -> Vec<Ablation> {
    vec![
        lbp_entries(scale),
        tage_tables(scale),
        line_vs_prefetch(scale),
        btb_associativity(scale),
        thread_scaling(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: Scale = Scale::Custom(0.12);

    #[test]
    fn lbp_entries_improve_then_saturate() {
        let a = lbp_entries(SCALE);
        assert_eq!(a.points.len(), 4);
        let no_lbp = a.points[0].value;
        let with64 = a.points[2].value;
        let with256 = a.points[3].value;
        assert!(with64 <= no_lbp + 0.05, "{with64} vs {no_lbp}");
        // Diminishing returns beyond 64 entries.
        assert!(
            (with256 - with64).abs() < 0.5,
            "64-entry is at the knee: {with64} vs {with256}"
        );
        assert!(a.render().contains("loop-BP"));
    }

    #[test]
    fn more_tage_tables_never_hurt_much() {
        let a = tage_tables(SCALE);
        let two = a.points[0].value;
        let twelve = a.points[3].value;
        assert!(twelve <= two * 1.1 + 0.2, "12 tables {twelve} vs 2 {two}");
        // Budgets grow with table count.
        assert!(a.points[3].aux > a.points[0].aux);
    }

    #[test]
    fn wide_lines_match_prefetching_on_hpc() {
        let a = line_vs_prefetch(SCALE);
        let plain = a.points[0].value;
        let prefetch = a.points[1].value;
        let wide = a.points[2].value;
        // Both mechanisms beat the plain narrow-line cache on HPC code.
        assert!(prefetch <= plain + 0.02, "{prefetch} vs {plain}");
        assert!(wide <= plain + 0.02, "{wide} vs {plain}");
    }

    #[test]
    fn btb_associativity_monotone_for_exmatex() {
        let a = btb_associativity(SCALE);
        let direct = a.points[0].value;
        let eight = a.points[3].value;
        assert!(
            eight < direct,
            "8-way {eight} must beat direct-mapped {direct}"
        );
    }

    #[test]
    fn asymmetric_advantage_grows_with_cores() {
        let a = thread_scaling(Scale::Custom(0.12));
        assert_eq!(a.points.len(), 4);
        let at8 = &a.points[0];
        let at64 = &a.points[3];
        // Serial share of time grows with core count (Amdahl).
        assert!(
            at64.aux > at8.aux,
            "serial share must grow: {} -> {}",
            at8.aux,
            at64.aux
        );
        // And the asymmetric design's advantage does not shrink.
        assert!(
            at64.value >= at8.value * 0.98,
            "advantage at 64 cores {} vs 8 cores {}",
            at64.value,
            at8.value
        );
    }
}
