//! The `fetchsim` exhibit: a decoupled-front-end design grid (FTQ depth
//! × fetch width × prefetch degree × BTB size) swept over the paper
//! roster *and* the kernel archetypes, one trace replay per workload.
//!
//! This is the cycle-level counterpart of the MPKI exhibits: instead of
//! pricing miss rates through closed-form penalties, every design point
//! runs the [`FetchSim`] pipeline model and reports measured fetch
//! bandwidth plus the exact stall-cycle breakdown. The headline
//! directional claim it reproduces: on HPC and kernel workloads, a
//! BTB an order of magnitude smaller costs almost no fetch bandwidth
//! once fetch-directed prefetching and the FTQ's run-ahead are in
//! place — the resteers still happen, but their cycles are hidden.

use rebalance_fetchsim::{FetchConfig, FetchSim, FetchStats, FtqConfig};
use rebalance_frontend::{BtbConfig, FrontendConfig};
use rebalance_workloads::{Scale, Suite, Workload};
use serde::{Deserialize, Serialize};

use crate::util::{self, f2, mean, TextTable};

/// The default design grid: FTQ depth × fetch width × prefetch degree
/// × BTB size, all on the baseline predictor/I-cache so the BTB axis
/// is isolated. 16 design points — all sharing one replay per
/// workload.
pub fn default_grid() -> Vec<FetchConfig> {
    let mut grid = Vec::new();
    for depth in [4usize, 16] {
        for width in [2usize, 4] {
            for degree in [0usize, 4] {
                for btb in [2048usize, 256] {
                    let frontend = FrontendConfig {
                        btb: BtbConfig::new(btb, 8),
                        ..FrontendConfig::baseline()
                    };
                    grid.push(FetchConfig::new(
                        frontend,
                        FtqConfig::new(depth, width, degree),
                    ));
                }
            }
        }
    }
    grid
}

/// The fetch-side summary of one design point on one workload.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FetchSummary {
    /// Instructions per fetch cycle over the whole run.
    pub bandwidth: f64,
    /// Serial-section fetch bandwidth.
    pub serial_bandwidth: f64,
    /// Parallel-section fetch bandwidth.
    pub parallel_bandwidth: f64,
    /// Total modeled fetch cycles.
    pub cycles: u64,
    /// Mispredict-redirect stall cycles per kilo-instruction.
    pub mispredict_cpk: f64,
    /// BTB-resteer stall cycles per kilo-instruction (exposed only).
    pub resteer_cpk: f64,
    /// Exposed I-cache miss cycles per kilo-instruction.
    pub icache_cpk: f64,
    /// FTQ-empty cycles per kilo-instruction.
    pub ftq_empty_cpk: f64,
}

impl FetchSummary {
    fn from_sim(sim: &FetchSim) -> Self {
        let report = sim.report();
        report
            .check_attribution()
            .expect("fetchsim attribution invariant");
        let total: FetchStats = report.total();
        FetchSummary {
            bandwidth: total.bandwidth(),
            serial_bandwidth: report.sections.serial.bandwidth(),
            parallel_bandwidth: report.sections.parallel.bandwidth(),
            cycles: report.total_cycles,
            mispredict_cpk: total.stall_cpk(total.stalls.mispredict),
            resteer_cpk: total.stall_cpk(total.stalls.resteer),
            icache_cpk: total.stall_cpk(total.stalls.icache),
            ftq_empty_cpk: total.stall_cpk(total.stalls.ftq_empty),
        }
    }
}

/// One workload's row of the grid sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchsimRow {
    /// Workload name.
    pub workload: String,
    /// Owning suite.
    pub suite: Suite,
    /// One summary per grid design point, in grid order.
    pub summaries: Vec<FetchSummary>,
}

/// The raw grid sweep: every selected workload × every design point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchsimSweep {
    /// Design-point labels, in grid order.
    pub configs: Vec<String>,
    /// One row per workload, selection order.
    pub rows: Vec<FetchsimRow>,
}

impl FetchsimSweep {
    /// Looks one cell up.
    pub fn summary(&self, workload: &str, config: &str) -> Option<&FetchSummary> {
        let ci = self.configs.iter().position(|c| c == config)?;
        self.rows
            .iter()
            .find(|r| r.workload == workload)
            .map(|r| &r.summaries[ci])
    }
}

/// Sweeps the design grid over `workloads`: the whole grid joins one
/// [`ToolSet`](rebalance_trace::ToolSet), so the cost is one replay per
/// `(workload, scale)` — cache-served when a cache is configured —
/// regardless of grid size. Honors the process-wide phase-sampling
/// latch (`--sample`): when set, each replay covers only weighted
/// representative intervals.
pub fn sweep_grid(workloads: Vec<Workload>, scale: Scale, grid: &[FetchConfig]) -> FetchsimSweep {
    let _fetchsim_span = rebalance_telemetry::span("fetchsim");
    let rows = util::sweep_weighted(workloads, scale, |_| {
        grid.iter().copied().map(FetchSim::new).collect()
    })
    .into_iter()
    .map(|o| FetchsimRow {
        workload: o.item.name().to_owned(),
        suite: o.item.suite(),
        summaries: o.tools.iter().map(FetchSummary::from_sim).collect(),
    })
    .collect();
    FetchsimSweep {
        configs: grid.iter().map(FetchConfig::label).collect(),
        rows,
    }
}

/// One exhibit row: per-suite mean fetch bandwidth plus the mean stall
/// breakdown for one design point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchsimExhibitRow {
    /// Design-point label.
    pub config: String,
    /// Mean fetch bandwidth per suite, in [`Suite::ALL`] order.
    pub bandwidth: [f64; Suite::COUNT],
    /// Mean stall cycles per kilo-instruction over every selected
    /// workload: `[mispredict, resteer, icache, ftq_empty]`.
    pub stalls_cpk: [f64; 4],
}

/// The `fetchsim` exhibit: the grid aggregated per suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fetchsim {
    /// One row per design point, grid order.
    pub rows: Vec<FetchsimExhibitRow>,
}

impl Fetchsim {
    /// Bandwidth for a config/suite pair.
    pub fn bandwidth(&self, config: &str, suite: Suite) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.config == config)
            .map(|r| r.bandwidth[suite.index()])
    }

    /// Mean fetch-bandwidth ratio of the small-BTB design point to its
    /// large-BTB sibling over the given suites, at the deep-FTQ 4-wide
    /// grid corner — with or without FDIP. This is the paper's
    /// directional claim in one number: with FDIP on, HPC/kernel
    /// workloads should keep ≈ all of their fetch bandwidth despite an
    /// 8× smaller BTB.
    pub fn small_btb_bandwidth_ratio(&self, suites: &[Suite], fdip: bool) -> f64 {
        let degree = if fdip { 4 } else { 0 };
        let small = format!("ftq16/w4/pf{degree}/btb256");
        let large = format!("ftq16/w4/pf{degree}/btb2048");
        mean(suites.iter().filter_map(|&s| {
            let small = self.bandwidth(&small, s)?;
            let large = self.bandwidth(&large, s)?;
            (large > 0.0).then_some(small / large)
        }))
    }

    /// Text rendering: bandwidth per suite, then the stall breakdown.
    pub fn render(&self) -> String {
        let mut header = vec!["config".to_owned()];
        header.extend(Suite::ALL.iter().map(|s| s.to_string()));
        let mut bw = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![r.config.clone()];
            cells.extend(r.bandwidth.iter().map(|b| f2(*b)));
            bw.row(cells);
        }
        let mut stalls = TextTable::new(vec![
            "config",
            "mispredict",
            "resteer",
            "icache",
            "ftq-empty",
        ]);
        for r in &self.rows {
            let mut cells = vec![r.config.clone()];
            cells.extend(r.stalls_cpk.iter().map(|c| f2(*c)));
            stalls.row(cells);
        }
        let hpc_kernels: Vec<Suite> = Suite::ALL
            .into_iter()
            .filter(|s| s.is_hpc() || *s == Suite::Kernels)
            .collect();
        format!(
            "Fetchsim: decoupled front-end design grid (mean fetch bandwidth, insts/cycle)\n{}\n\
             Fetchsim: stall-cycle breakdown (cycles per kilo-instruction, mean over selection)\n{}\n\
             small-BTB (256 vs 2048) bandwidth retention on HPC+kernels: \
             {} with FDIP, {} without\n",
            bw.render(),
            stalls.render(),
            f2(self.small_btb_bandwidth_ratio(&hpc_kernels, true)),
            f2(self.small_btb_bandwidth_ratio(&hpc_kernels, false)),
        )
    }
}

/// Runs the exhibit: the default grid over the full roster (paper
/// suites + kernel archetypes, narrowed by the active suite filter).
pub fn run(scale: Scale) -> Fetchsim {
    from_sweep(&sweep_grid(util::roster(), scale, &default_grid()))
}

/// Aggregates a raw grid sweep into the per-suite exhibit.
pub fn from_sweep(sweep: &FetchsimSweep) -> Fetchsim {
    let rows = sweep
        .configs
        .iter()
        .enumerate()
        .map(|(ci, config)| {
            let mut bandwidth = [0.0; Suite::COUNT];
            for (si, suite) in Suite::ALL.iter().enumerate() {
                bandwidth[si] = mean(
                    sweep
                        .rows
                        .iter()
                        .filter(|r| r.suite == *suite)
                        .map(|r| r.summaries[ci].bandwidth),
                );
            }
            let col =
                |f: fn(&FetchSummary) -> f64| mean(sweep.rows.iter().map(|r| f(&r.summaries[ci])));
            FetchsimExhibitRow {
                config: config.clone(),
                bandwidth,
                stalls_cpk: [
                    col(|s| s.mispredict_cpk),
                    col(|s| s.resteer_cpk),
                    col(|s| s.icache_cpk),
                    col(|s| s.ftq_empty_cpk),
                ],
            }
        })
        .collect();
    Fetchsim { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spans_the_four_axes() {
        let grid = default_grid();
        assert_eq!(grid.len(), 16);
        let labels: Vec<String> = grid.iter().map(FetchConfig::label).collect();
        assert!(labels.contains(&"ftq16/w4/pf4/btb256".to_owned()));
        assert!(labels.contains(&"ftq4/w2/pf0/btb2048".to_owned()));
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), grid.len(), "all design points distinct");
    }

    #[test]
    fn exhibit_reproduces_the_small_btb_claim() {
        let f = run(Scale::Smoke);
        assert_eq!(f.rows.len(), 16);
        let hpc_kernels: Vec<Suite> = Suite::ALL
            .into_iter()
            .filter(|s| s.is_hpc() || *s == Suite::Kernels)
            .collect();
        let with_fdip = f.small_btb_bandwidth_ratio(&hpc_kernels, true);
        assert!(
            with_fdip > 0.97,
            "HPC/kernels keep their fetch bandwidth with a small BTB under FDIP: {with_fdip}"
        );
        let without = f.small_btb_bandwidth_ratio(&hpc_kernels, false);
        assert!(
            with_fdip >= without - 0.01,
            "FDIP must not make the small BTB worse: {with_fdip} vs {without}"
        );
        // Deeper queues and FDIP buy bandwidth on the same BTB.
        let shallow = f.bandwidth("ftq4/w4/pf0/btb2048", Suite::Npb).unwrap();
        let deep = f.bandwidth("ftq16/w4/pf4/btb2048", Suite::Npb).unwrap();
        assert!(deep > shallow, "{deep} vs {shallow}");
        assert!(f.render().contains("bandwidth retention"));
    }

    #[test]
    fn sweep_rows_cover_selection_and_grid() {
        let ws = vec![
            rebalance_workloads::find("CG").unwrap(),
            rebalance_workloads::find("k.triad").unwrap(),
        ];
        let s = sweep_grid(ws, Scale::Smoke, &default_grid());
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.configs.len(), 16);
        let cell = s.summary("CG", "ftq16/w4/pf4/btb2048").unwrap();
        assert!(cell.bandwidth > 0.0);
        assert!(cell.cycles > 0);
        assert!(s.summary("CG", "nope").is_none());
    }
}
