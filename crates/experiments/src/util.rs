//! Shared harness utilities: the process-wide sweep engine, the
//! optional trace cache, parallel mapping, and table rendering.
//!
//! Every experiment routes its replays through the helpers here, so
//! exhibits share one [`SweepEngine`] (one replay ledger, one thread
//! pool) and — when [`TRACE_CACHE_ENV`] points at a directory — one
//! on-disk [`TraceCache`]. [`sweep_report`] then accounts for the whole
//! process in a single [`Report`], replacing the ad-hoc per-experiment
//! engines and stat printing this module used to encourage.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use rebalance_coresim::{simulate_floorplans, simulate_floorplans_cached, CmpResult, CmpSim};
use rebalance_pintools::{
    characterization_from_tools, characterization_tools, BbvTool, Characterization,
};
use rebalance_trace::{
    CacheStats, DeliveryLedger, Pintool, Report, RunSummary, SampledOutcome, SamplingConfig,
    SweepEngine, SweepOutcome, TraceCache,
};
use rebalance_workloads::{Scale, Suite, Workload};

/// Environment variable naming the trace-cache directory. When set,
/// every experiment replay is served through the cache; when unset,
/// traces are generated live (the pre-cache behavior).
pub const TRACE_CACHE_ENV: &str = "REBALANCE_TRACE_CACHE";

/// Process-wide suite filter: [`u8::MAX`] means "no filter", anything
/// else is a [`Suite::index`]. Set once (by the CLI's `--suite`) before
/// exhibits run; unit tests leave it untouched.
static SUITE_FILTER: AtomicU8 = AtomicU8::new(u8::MAX);

/// Restricts every roster-driven exhibit in this process to one suite
/// (`None` clears the filter). The CLI's `rebalance paper --suite S`
/// sets this exactly once, before any exhibit runs.
pub fn set_suite_filter(suite: Option<Suite>) {
    let value = suite.map_or(u8::MAX, |s| s.index() as u8);
    SUITE_FILTER.store(value, Ordering::Relaxed);
}

/// The active suite filter, if any.
pub fn suite_filter() -> Option<Suite> {
    match SUITE_FILTER.load(Ordering::Relaxed) as usize {
        i if i < Suite::COUNT => Some(Suite::ALL[i]),
        _ => None,
    }
}

/// Drops workloads outside the active suite filter (identity when no
/// filter is set). Exhibits with hand-picked subsets route them through
/// here so `--suite` narrows every exhibit consistently.
pub fn filtered(workloads: Vec<Workload>) -> Vec<Workload> {
    match suite_filter() {
        Some(suite) => workloads
            .into_iter()
            .filter(|w| w.suite() == suite)
            .collect(),
        None => workloads,
    }
}

/// The roster exhibits sweep: the full registry, narrowed by the
/// active suite filter.
pub fn roster() -> Vec<Workload> {
    filtered(rebalance_workloads::all())
}

/// Process-wide phase-sampling latch: 0 intervals means "full replay".
/// Set once (by the CLI's `--sample`/`--sample-k`) before exhibits run,
/// like [`set_suite_filter`].
static SAMPLE_INTERVALS: AtomicUsize = AtomicUsize::new(0);
static SAMPLE_K: AtomicUsize = AtomicUsize::new(0);

/// Turns phase sampling on (`Some(config)`) or off (`None`) for every
/// timing sweep in this process that goes through [`sweep_weighted`].
/// The CLI's `--sample N [--sample-k K]` sets this exactly once, before
/// any exhibit runs.
pub fn set_sampling(config: Option<SamplingConfig>) {
    match config {
        Some(cfg) => {
            SAMPLE_INTERVALS.store(cfg.intervals.max(1), Ordering::Relaxed);
            SAMPLE_K.store(cfg.k.max(1), Ordering::Relaxed);
        }
        None => {
            SAMPLE_INTERVALS.store(0, Ordering::Relaxed);
            SAMPLE_K.store(0, Ordering::Relaxed);
        }
    }
}

/// The active sampling configuration, if phase sampling is on.
pub fn sampling() -> Option<SamplingConfig> {
    let intervals = SAMPLE_INTERVALS.load(Ordering::Relaxed);
    if intervals == 0 {
        return None;
    }
    let k = SAMPLE_K.load(Ordering::Relaxed).max(1);
    Some(
        SamplingConfig::default()
            .with_intervals(intervals)
            .with_k(k),
    )
}

/// The cache sampled sweeps draw snapshot bytes from: the shared cache
/// when `REBALANCE_TRACE_CACHE` is set, else a process-lifetime scratch
/// directory under the system temp dir (sampling needs a recorded
/// snapshot to slice, so it always snapshots — pointing the env var at
/// a persistent directory makes warm sampled sweeps skip generation
/// entirely).
pub fn sampling_cache() -> &'static TraceCache {
    match shared_cache() {
        Some(cache) => cache,
        None => {
            static SCRATCH: OnceLock<TraceCache> = OnceLock::new();
            SCRATCH.get_or_init(|| TraceCache::scratch().expect("temp dir must be writable"))
        }
    }
}

/// The process-wide sweep engine all experiments share.
pub fn engine() -> &'static SweepEngine {
    static ENGINE: OnceLock<SweepEngine> = OnceLock::new();
    ENGINE.get_or_init(SweepEngine::new)
}

/// The process-wide trace cache, opened from [`TRACE_CACHE_ENV`] on
/// first use; `None` when the variable is unset or the directory cannot
/// be created (the experiments then run uncached rather than fail).
pub fn shared_cache() -> Option<&'static TraceCache> {
    static CACHE: OnceLock<Option<TraceCache>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let dir = std::env::var_os(TRACE_CACHE_ENV)?;
            TraceCache::new(std::path::PathBuf::from(dir)).ok()
        })
        .as_ref()
}

/// Replay and cache accounting for everything run through [`engine`]
/// so far — the one report the CLI and benches print.
pub fn sweep_report() -> Report {
    let mut report = engine().report().with_lanes(rebalance_trace::lane_fill());
    // Attributed only when every delivered batch used one backend —
    // an auto policy that split small and large traces stays unlabeled
    // rather than mislabeled.
    if let Some(backend) = rebalance_trace::delivered_backend() {
        report = report.with_backend(backend);
    }
    match shared_cache() {
        Some(cache) => report.with_cache(cache),
        None => report,
    }
}

/// A point-in-time baseline of the process-wide accounting ledgers
/// (replay count, batch delivery, cache counters — all cumulative over
/// the process). Capture one before a sweep and render the sweep-scoped
/// report with [`sweep_report_since`], so a second sweep in the same
/// process does not inherit the first one's traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportBaseline {
    replays: u64,
    ledger: DeliveryLedger,
    cache: CacheStats,
}

/// Snapshots the current process-wide ledgers as a baseline.
pub fn report_baseline() -> ReportBaseline {
    ReportBaseline {
        replays: engine().replays(),
        ledger: DeliveryLedger::snapshot(),
        cache: shared_cache().map(TraceCache::stats).unwrap_or_default(),
    }
}

/// Replay and cache accounting for everything run through [`engine`]
/// since `base` — the per-sweep variant of [`sweep_report`].
pub fn sweep_report_since(base: &ReportBaseline) -> Report {
    let ledger = DeliveryLedger::snapshot().since(&base.ledger);
    let mut report = Report {
        replays: engine().replays() - base.replays,
        ..Report::default()
    }
    .with_lanes(ledger.lane_fill());
    if let Some(backend) = ledger.backend() {
        report = report.with_backend(backend);
    }
    match shared_cache() {
        Some(cache) => report.with_cache_stats(cache.stats().since(&base.cache)),
        None => report,
    }
}

/// Sweeps `tools_for` over `workloads` at `scale`, one replay per
/// workload — served from the shared cache when one is configured.
pub fn sweep<T, ToolsFn>(
    workloads: Vec<Workload>,
    scale: Scale,
    tools_for: ToolsFn,
) -> Vec<SweepOutcome<Workload, T>>
where
    T: Pintool + Send,
    ToolsFn: Fn(&Workload) -> Vec<T> + Sync,
{
    match shared_cache() {
        Some(cache) => engine()
            .sweep_cached(
                cache,
                workloads,
                |w| w.trace_key(scale),
                |w| w.trace(scale),
                tools_for,
            )
            .expect("trace cache replay"),
        None => engine().sweep(
            workloads,
            |w| w.trace(scale).expect("valid roster profile"),
            tools_for,
        ),
    }
}

/// Sweeps `tools_for` over `workloads` at `scale` replaying only each
/// trace's weighted representative intervals under `config` — the
/// phase-sampled sibling of [`sweep`]. Tools must be weight-aware
/// ([`Pintool::supports_sampled_replay`]).
pub fn sweep_sampled<T, ToolsFn>(
    config: &SamplingConfig,
    workloads: Vec<Workload>,
    scale: Scale,
    tools_for: ToolsFn,
) -> Vec<SampledOutcome<Workload, T>>
where
    T: Pintool + Send,
    ToolsFn: Fn(&Workload) -> Vec<T> + Sync,
{
    let dims = config.dims;
    engine()
        .sweep_sampled(
            sampling_cache(),
            config,
            workloads,
            |w| w.trace_key(scale),
            |w| w.trace(scale),
            tools_for,
            || BbvTool::new(dims),
        )
        .expect("sampled trace replay")
}

/// [`sweep`] that honors the process-wide sampling latch: a full replay
/// per workload when sampling is off, a weighted representative replay
/// when [`set_sampling`] turned it on. Only timing sweeps whose tools
/// are weight-aware should route through here.
pub fn sweep_weighted<T, ToolsFn>(
    workloads: Vec<Workload>,
    scale: Scale,
    tools_for: ToolsFn,
) -> Vec<SweepOutcome<Workload, T>>
where
    T: Pintool + Send,
    ToolsFn: Fn(&Workload) -> Vec<T> + Sync,
{
    match sampling() {
        Some(config) => sweep_sampled(&config, workloads, scale, tools_for)
            .into_iter()
            .map(|o| SweepOutcome {
                item: o.item,
                tools: o.tools,
                summary: o.summary,
            })
            .collect(),
        None => sweep(workloads, scale, tools_for),
    }
}

/// Fans `tools` out over one replay of a single workload's trace —
/// cached when a shared cache is configured.
pub fn fan_out<T: Pintool>(
    workload: &Workload,
    scale: Scale,
    tools: Vec<T>,
) -> (Vec<T>, RunSummary) {
    match shared_cache() {
        Some(cache) => {
            let (tools, replay) = engine()
                .fan_out_cached(
                    cache,
                    &workload.trace_key(scale),
                    || workload.trace(scale),
                    tools,
                )
                .expect("trace cache replay");
            (tools, replay.summary)
        }
        None => {
            let trace = workload.trace(scale).expect("valid roster profile");
            engine().fan_out(&trace, tools)
        }
    }
}

/// Simulates `sims` over one workload — through the shared cache when
/// one is configured.
pub fn floorplans(sims: &[CmpSim], workload: &Workload, scale: Scale) -> Vec<CmpResult> {
    match shared_cache() {
        Some(cache) => simulate_floorplans_cached(sims, workload, scale, cache),
        None => simulate_floorplans(sims, workload, scale),
    }
    .expect("valid roster profile")
}

/// Characterizes one workload, streaming the dynamic events from the
/// shared cache when one is configured. The program model is still
/// synthesized either way (the static footprint is a static property a
/// dynamic event stream cannot supply), but synthesis is cheap — the
/// cache removes the expensive interpreter pass.
pub fn characterize_workload(workload: &Workload, scale: Scale) -> Characterization {
    let trace = workload.trace(scale).expect("valid roster profile");
    match shared_cache() {
        Some(cache) => {
            let static_bytes = trace.program().static_bytes();
            let mut tools = characterization_tools();
            let replay = cache
                .replay_with(&workload.trace_key(scale), move || Ok(trace), &mut tools)
                .expect("trace cache replay");
            characterization_from_tools(tools, static_bytes, replay.summary)
        }
        None => rebalance_pintools::characterize(&trace),
    }
}

/// Maps `f` over `items` on the shared engine's executor
/// (work-stealing, order-preserving). Thin wrapper kept for harness
/// call sites that are not trace sweeps.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    engine().map(&items, f)
}

/// Runs `f` over the roster (narrowed by the active suite filter)
/// in parallel, returning `(workload, result)` pairs in roster order.
pub fn for_all_workloads<U, F>(f: F) -> Vec<(Workload, U)>
where
    U: Send,
    F: Fn(&Workload) -> U + Sync,
{
    let ws = roster();
    let results = engine().map(&ws, f);
    ws.into_iter().zip(results).collect()
}

/// Minimal fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Mean of an iterator of f64.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["suite", "value"]);
        t.row(vec!["ExMatEx", "13.0"]);
        t.row(vec!["NPB", "7.2"]);
        let s = t.render();
        assert!(s.contains("suite"));
        assert!(s.contains("ExMatEx"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>()[0], '-');
    }

    #[test]
    fn row_padding() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn for_all_covers_roster() {
        let names = for_all_workloads(|w| w.name().to_owned());
        assert_eq!(names.len(), rebalance_workloads::all().len());
        assert!(names.len() > 41, "kernel archetypes ride along");
        assert_eq!(names[0].0.name(), names[0].1);
    }

    #[test]
    fn roster_without_filter_is_the_full_registry() {
        // Unit tests never set the filter (it is process-wide), so the
        // default view must be the whole registry; `--suite` behavior
        // is exercised end to end by the CLI smoke in CI.
        assert_eq!(suite_filter(), None);
        assert_eq!(roster().len(), rebalance_workloads::all().len());
        let subset = filtered(rebalance_workloads::by_suite(Suite::Npb));
        assert_eq!(
            subset.len(),
            rebalance_workloads::by_suite(Suite::Npb).len()
        );
    }

    #[test]
    fn engine_is_process_wide() {
        assert!(std::ptr::eq(engine(), engine()));
        assert!(engine().executor().threads() >= 1);
    }

    #[test]
    fn sweep_report_tracks_the_shared_engine() {
        let before = sweep_report().replays;
        let w = rebalance_workloads::find("EP").unwrap();
        let (tools, summary) = fan_out(
            &w,
            Scale::Smoke,
            vec![rebalance_trace::NullTool, rebalance_trace::NullTool],
        );
        assert_eq!(tools.len(), 2);
        assert!(summary.instructions > 0);
        // Sibling tests tick the same process-wide engine concurrently,
        // so only a lower bound is stable here; the exact one-replay-
        // per-fan-out accounting is asserted on private engines in the
        // trace crate's tests.
        assert!(sweep_report().replays > before, "the shared ledger moved");
    }

    #[test]
    fn sampling_latch_defaults_to_off() {
        // The latch is process-wide; exhibits' own unit tests run in
        // this binary, so nothing here may flip it on. Round-trip
        // behavior is exercised by `tests/integration_sampling.rs`,
        // which owns its process.
        assert_eq!(sampling(), None);
    }

    #[test]
    fn sampled_sweep_delivers_a_fraction_and_scales_counts() {
        use rebalance_coresim::CoreModel;
        use rebalance_frontend::CoreKind;

        let w = rebalance_workloads::find("CG").unwrap();
        let config = SamplingConfig::default().with_intervals(40).with_k(4);
        let out = sweep_sampled(&config, vec![w.clone()], Scale::Smoke, |_| {
            vec![CoreModel::new(CoreKind::Baseline).fetch_tools()]
        });
        assert_eq!(out.len(), 1);
        let o = &out[0];
        let total = o.summary.instructions;
        assert!(total > 0);
        assert!(
            o.delivered_instructions * 4 <= total,
            "{} of {total} delivered — more than 1/k",
            o.delivered_instructions
        );
        let weights: u64 = o.plan.clusters().iter().map(|c| c.weight).sum();
        assert_eq!(weights as usize, o.plan.num_intervals());
        // The weighted tools still account for roughly every
        // instruction.
        let timing =
            CoreModel::new(CoreKind::Baseline).timing_of(&o.tools[0], &w.profile().backend);
        let counted = timing.serial.insts + timing.parallel.insts;
        let err = (counted as f64 - total as f64).abs() / total as f64;
        assert!(err < 0.02, "weighted inst count {counted} vs {total}");
    }

    #[test]
    fn characterize_workload_matches_direct_characterization() {
        // Without REBALANCE_TRACE_CACHE in the test environment this
        // exercises the live path; the cached path is covered by the
        // integration tests.
        let w = rebalance_workloads::find("CG").unwrap();
        let direct = rebalance_pintools::characterize(&w.trace(Scale::Smoke).unwrap());
        assert_eq!(characterize_workload(&w, Scale::Smoke), direct);
    }

    #[test]
    fn floorplans_helper_runs() {
        use rebalance_mcpat::CmpFloorplan;
        let w = rebalance_workloads::find("MG").unwrap();
        let sims = [CmpSim::new(CmpFloorplan::baseline(8))];
        let results = floorplans(&sims, &w, Scale::Smoke);
        assert_eq!(results.len(), 1);
        assert!(results[0].time_s > 0.0);
    }
}
