//! Shared harness utilities: parallel mapping and table rendering.

use std::fmt::Write as _;

use rebalance_trace::Executor;
use rebalance_workloads::Workload;

/// Maps `f` over `items` on the shared [`Executor`] (work-stealing,
/// order-preserving). Thin wrapper kept for harness call sites that are
/// not trace sweeps.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Executor::new().map(&items, f)
}

/// Runs `f` over the full roster in parallel, returning
/// `(workload, result)` pairs in roster order.
pub fn for_all_workloads<U, F>(f: F) -> Vec<(Workload, U)>
where
    U: Send,
    F: Fn(&Workload) -> U + Sync,
{
    let ws = rebalance_workloads::all();
    let results = Executor::new().map(&ws, f);
    ws.into_iter().zip(results).collect()
}

/// Minimal fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Mean of an iterator of f64.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["suite", "value"]);
        t.row(vec!["ExMatEx", "13.0"]);
        t.row(vec!["NPB", "7.2"]);
        let s = t.render();
        assert!(s.contains("suite"));
        assert!(s.contains("ExMatEx"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>()[0], '-');
    }

    #[test]
    fn row_padding() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn for_all_covers_roster() {
        let names = for_all_workloads(|w| w.name().to_owned());
        assert_eq!(names.len(), 41);
        assert_eq!(names[0].0.name(), names[0].1);
    }
}
