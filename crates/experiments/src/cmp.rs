//! Table III and Figures 10–11: area/power and CMP-level evaluation.

use rebalance_coresim::{CmpResult, CmpSim};
use rebalance_frontend::CoreKind;
use rebalance_mcpat::{CmpFloorplan, CoreEstimate};
use rebalance_workloads::{Scale, Suite, Workload};
use serde::{Deserialize, Serialize};

use crate::paper;
use crate::util::{self, f2, for_all_workloads, mean, par_map, TextTable};

/// The four Figure 10 CMP simulators.
fn figure10_sims() -> Vec<CmpSim> {
    CmpFloorplan::figure10_set()
        .into_iter()
        .map(CmpSim::new)
        .collect()
}

/// One Table III row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Row key (e.g. `"baseline.icache"`).
    pub key: String,
    /// Human label.
    pub label: String,
    /// Modelled area in mm².
    pub area_mm2: f64,
    /// Modelled power in W.
    pub power_w: f64,
}

/// Table III: structure and core area/power on both designs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows in the paper's order.
    pub rows: Vec<Table3Row>,
}

/// Builds Table III from the McPAT-lite models.
pub fn table3() -> Table3 {
    let mut rows = Vec::new();
    for (kind, prefix) in [
        (CoreKind::Baseline, "baseline"),
        (CoreKind::Tailored, "tailored"),
    ] {
        let est = CoreEstimate::for_core(kind);
        let b = est.breakdown();
        rows.push(Table3Row {
            key: format!("{prefix}.core"),
            label: format!("{prefix}: total core"),
            area_mm2: est.area_mm2(),
            power_w: est.power_w(),
        });
        rows.push(Table3Row {
            key: format!("{prefix}.icache"),
            label: format!("{prefix}: I-cache"),
            area_mm2: b.icache.area_mm2,
            power_w: b.icache.power_w,
        });
        rows.push(Table3Row {
            key: format!("{prefix}.bp"),
            label: format!("{prefix}: branch predictor"),
            area_mm2: b.predictor.area_mm2,
            power_w: b.predictor.power_w,
        });
        rows.push(Table3Row {
            key: format!("{prefix}.btb"),
            label: format!("{prefix}: BTB"),
            area_mm2: b.btb.area_mm2,
            power_w: b.btb.power_w,
        });
    }
    Table3 { rows }
}

impl Table3 {
    /// Text rendering with the paper values alongside.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "structure",
            "area mm2",
            "power W",
            "paper area",
            "paper power",
        ]);
        for r in &self.rows {
            let (pa, pp) = paper::table3(&r.key)
                .map(|(a, p)| (format!("{a:.3}"), format!("{p:.3}")))
                .unwrap_or_default();
            t.row(vec![
                r.label.clone(),
                format!("{:.3}", r.area_mm2),
                format!("{:.3}", r.power_w),
                pa,
                pp,
            ]);
        }
        format!(
            "Table III: front-end area/power at 40nm (Cortex-A9-class core)\n{}",
            t.render()
        )
    }
}

/// Normalized metrics of one CMP configuration for one suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Suite.
    pub suite: Suite,
    /// Floorplan name.
    pub floorplan: String,
    /// Execution time normalized to the Baseline CMP.
    pub time: f64,
    /// Power normalized to the Baseline CMP.
    pub power: f64,
    /// Energy normalized to the Baseline CMP.
    pub energy: f64,
    /// ED product normalized to the Baseline CMP.
    pub ed: f64,
}

/// Figure 10: normalized execution time / power / energy / ED.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    /// Rows per suite × floorplan.
    pub rows: Vec<Fig10Row>,
}

impl Fig10 {
    /// Looks one row up.
    pub fn row(&self, suite: Suite, floorplan_contains: &str) -> Option<&Fig10Row> {
        self.rows
            .iter()
            .find(|r| r.suite == suite && r.floorplan.contains(floorplan_contains))
    }

    /// Text rendering with the paper's Figure 10a values alongside.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "suite",
            "CMP",
            "time",
            "power",
            "energy",
            "ED",
            "paper-time",
        ]);
        for r in &self.rows {
            let (pt, pa, pp) = paper::fig10_time(r.suite);
            let paper_time = if r.floorplan.contains("8T") && !r.floorplan.contains("1B") {
                f2(pt)
            } else if r.floorplan.contains("1B+7T") {
                f2(pa)
            } else if r.floorplan.contains("1B+8T") {
                f2(pp)
            } else {
                "1.00".into()
            };
            t.row(vec![
                r.suite.to_string(),
                r.floorplan.clone(),
                f2(r.time),
                f2(r.power),
                f2(r.energy),
                f2(r.ed),
                paper_time,
            ]);
        }
        format!(
            "Figure 10: normalized time/power/energy/ED per CMP configuration\n{}",
            t.render()
        )
    }
}

/// Per-workload Figure 10/11 raw results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CmpRun {
    /// Workload name.
    pub workload: String,
    /// Suite.
    pub suite: Suite,
    /// Results per floorplan (Figure 10 order).
    pub results: Vec<CmpResult>,
}

/// Simulates every workload on the four Figure 10 floorplans. The
/// floorplans share one trace replay per workload
/// ([`util::floorplans`], cache-served when configured), and workloads
/// run in parallel.
pub fn run_cmps(scale: Scale) -> Vec<CmpRun> {
    let sims = figure10_sims();
    for_all_workloads(|w| util::floorplans(&sims, w, scale))
        .into_iter()
        .map(|(w, results): (Workload, Vec<CmpResult>)| CmpRun {
            workload: w.name().to_owned(),
            suite: w.suite(),
            results,
        })
        .collect()
}

/// Aggregates raw CMP runs into Figure 10.
pub fn fig10_from_runs(runs: &[CmpRun]) -> Fig10 {
    let mut rows = Vec::new();
    let floorplans: Vec<String> = runs
        .first()
        .map(|r| r.results.iter().map(|x| x.floorplan.clone()).collect())
        .unwrap_or_default();
    for suite in Suite::ALL {
        for (fi, fp) in floorplans.iter().enumerate() {
            let norm = |f: &dyn Fn(&CmpResult) -> f64| {
                mean(
                    runs.iter()
                        .filter(|r| r.suite == suite)
                        .map(|r| f(&r.results[fi]) / f(&r.results[0]).max(1e-30)),
                )
            };
            rows.push(Fig10Row {
                suite,
                floorplan: fp.clone(),
                time: norm(&|r| r.time_s),
                power: norm(&|r| r.power_w),
                energy: norm(&|r| r.energy_j),
                ed: norm(&|r| r.ed),
            });
        }
    }
    Fig10 { rows }
}

/// Runs Figure 10 end to end.
pub fn fig10(scale: Scale) -> Fig10 {
    fig10_from_runs(&run_cmps(scale))
}

/// The benchmarks Figure 11 highlights.
pub const FIG11_WORKLOADS: [&str; 6] = ["CoEVP", "CoMD", "fma3d", "FT", "h264ref", "gobmk"];

/// One Figure 11 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Benchmark.
    pub workload: String,
    /// Floorplan name.
    pub floorplan: String,
    /// Execution time normalized to the Baseline CMP.
    pub time: f64,
}

/// Figure 11: per-benchmark normalized execution time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// Rows per workload × floorplan.
    pub rows: Vec<Fig11Row>,
}

impl Fig11 {
    /// Looks one row up.
    pub fn time(&self, workload: &str, floorplan_contains: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.floorplan.contains(floorplan_contains))
            .map(|r| r.time)
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["workload", "CMP", "normalized time"]);
        for r in &self.rows {
            t.row(vec![r.workload.clone(), r.floorplan.clone(), f2(r.time)]);
        }
        format!(
            "Figure 11: normalized execution time, highlighted benchmarks\n{}",
            t.render()
        )
    }
}

/// Runs Figure 11 over the highlighted subset (one shared replay per
/// workload across the four floorplans).
pub fn fig11(scale: Scale) -> Fig11 {
    let sims = figure10_sims();
    let subset = util::filtered(
        FIG11_WORKLOADS
            .iter()
            .map(|n| rebalance_workloads::find(n).expect("figure 11 roster name"))
            .collect(),
    );
    let rows = par_map(subset, |w| {
        let results = util::floorplans(&sims, w, scale);
        let base = results[0].time_s;
        results
            .into_iter()
            .map(|r| Fig11Row {
                workload: w.name().to_owned(),
                floorplan: r.floorplan,
                time: r.time_s / base,
            })
            .collect::<Vec<_>>()
    });
    Fig11 {
        rows: rows.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduces_paper_anchors() {
        let t = table3();
        assert_eq!(t.rows.len(), 8);
        for r in &t.rows {
            if let Some((pa, pp)) = paper::table3(&r.key) {
                assert!(
                    (r.area_mm2 - pa).abs() / pa < 0.15,
                    "{}: area {} vs paper {}",
                    r.key,
                    r.area_mm2,
                    pa
                );
                assert!(
                    (r.power_w - pp).abs() / pp < 0.25,
                    "{}: power {} vs paper {}",
                    r.key,
                    r.power_w,
                    pp
                );
            }
        }
        assert!(t.render().contains("Table III"));
    }

    #[test]
    fn fig10_smoke_shape() {
        let f = fig10(Scale::Smoke);
        assert_eq!(f.rows.len(), Suite::COUNT * 4);
        // Baseline rows are exactly 1.0 (self-normalized).
        for suite in Suite::ALL {
            let base = f.row(suite, "Baseline").unwrap();
            assert!((base.time - 1.0).abs() < 1e-9);
        }
        // Asymmetric++ is faster than baseline for parallel suites.
        for suite in Suite::HPC {
            let app = f.row(suite, "1B+8T").unwrap();
            assert!(app.time < 1.0, "{suite}: {}", app.time);
            // ...and costs a bit more power.
            assert!(app.power < 1.15, "{suite}: power {}", app.power);
        }
        // SPEC INT gains nothing from extra cores (serial on master).
        let int = f.row(Suite::SpecCpuInt, "1B+8T").unwrap();
        assert!((int.time - 1.0).abs() < 0.02);
        assert!(f.render().contains("Figure 10"));
    }

    #[test]
    fn fig11_smoke_shape() {
        let f = fig11(Scale::Smoke);
        assert_eq!(f.rows.len(), 6 * 4);
        // FT is a large Asymmetric++ winner.
        let ft = f.time("FT", "1B+8T").unwrap();
        assert!(ft < 0.95, "FT asym++ {ft}");
        // Every baseline entry is 1.0.
        for w in FIG11_WORKLOADS {
            assert!((f.time(w, "Baseline").unwrap() - 1.0).abs() < 1e-9);
        }
        assert!(f.render().contains("h264ref"));
    }
}
