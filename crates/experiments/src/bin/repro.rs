//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all                      # every exhibit at quick scale
//! repro fig5 table3              # selected exhibits
//! repro all --scale full         # paper-scale instruction budgets
//! repro fig10 --json results/    # also dump machine-readable JSON
//! ```

use std::io::Write as _;
use std::path::PathBuf;

use rebalance_experiments::{ablations, caches, characterization, cmp, detail, predictors};
use rebalance_workloads::Scale;

const EXHIBITS: [&str; 16] = [
    "fig1",
    "fig2",
    "table1",
    "fig3",
    "fig4",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table3",
    "fig10",
    "fig11",
    "ablations",
    "detail",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro [EXHIBIT...] [--scale smoke|quick|full|<factor>] [--json DIR]\n\
         exhibits: all {}",
        EXHIBITS.join(" ")
    );
    std::process::exit(2);
}

struct Args {
    exhibits: Vec<String>,
    scale: Scale,
    json_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut exhibits = Vec::new();
    let mut scale = Scale::Quick;
    let mut json_dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = match v.as_str() {
                    "smoke" => Scale::Smoke,
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => match other.parse::<f64>() {
                        Ok(f) if f > 0.0 => Scale::Custom(f),
                        _ => usage(),
                    },
                };
            }
            "--json" => {
                json_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            "all" => exhibits.extend(EXHIBITS.iter().map(|s| s.to_string())),
            name if EXHIBITS.contains(&name) => exhibits.push(name.to_string()),
            _ => usage(),
        }
    }
    if exhibits.is_empty() {
        exhibits.extend(EXHIBITS.iter().map(|s| s.to_string()));
    }
    exhibits.dedup();
    Args {
        exhibits,
        scale,
        json_dir,
    }
}

fn dump_json<T: serde::Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

fn main() {
    let args = parse_args();
    let mut out = std::io::stdout().lock();
    let needs_characterization = args
        .exhibits
        .iter()
        .any(|e| matches!(e.as_str(), "fig1" | "fig2" | "table1" | "fig3" | "fig4"));
    let characterization_set = needs_characterization.then(|| characterization::run(args.scale));

    let needs_cmp_runs = args.exhibits.iter().any(|e| e == "fig10");
    let cmp_runs = needs_cmp_runs.then(|| cmp::run_cmps(args.scale));

    for exhibit in &args.exhibits {
        let text = match exhibit.as_str() {
            "fig1" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(&args.json_dir, "fig1", &set.fig1);
                set.fig1.render()
            }
            "fig2" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(&args.json_dir, "fig2", &set.fig2);
                set.fig2.render()
            }
            "table1" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(&args.json_dir, "table1", &set.table1);
                set.table1.render()
            }
            "fig3" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(&args.json_dir, "fig3", &set.fig3);
                set.fig3.render()
            }
            "fig4" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(&args.json_dir, "fig4", &set.fig4);
                set.fig4.render()
            }
            "table2" => {
                let t = predictors::table2();
                dump_json(&args.json_dir, "table2", &t);
                t.render()
            }
            "fig5" => {
                let f = predictors::fig5(args.scale);
                dump_json(&args.json_dir, "fig5", &f);
                f.render()
            }
            "fig6" => {
                let f = predictors::fig6(args.scale);
                dump_json(&args.json_dir, "fig6", &f);
                f.render()
            }
            "fig7" => {
                let f = caches::fig7(args.scale);
                dump_json(&args.json_dir, "fig7", &f);
                f.render()
            }
            "fig8" => {
                let f = caches::fig8(args.scale);
                dump_json(&args.json_dir, "fig8", &f);
                f.render()
            }
            "fig9" => {
                let f = caches::fig9(args.scale);
                dump_json(&args.json_dir, "fig9", &f);
                f.render()
            }
            "table3" => {
                let t = cmp::table3();
                dump_json(&args.json_dir, "table3", &t);
                t.render()
            }
            "fig10" => {
                let runs = cmp_runs.as_ref().expect("precomputed");
                let f = cmp::fig10_from_runs(runs);
                dump_json(&args.json_dir, "fig10", &f);
                dump_json(&args.json_dir, "fig10_raw", runs);
                f.render()
            }
            "fig11" => {
                let f = cmp::fig11(args.scale);
                dump_json(&args.json_dir, "fig11", &f);
                f.render()
            }
            "detail" => {
                let d = detail::run(args.scale);
                dump_json(&args.json_dir, "detail", &d);
                d.render()
            }
            "ablations" => {
                let all = ablations::run_all(args.scale);
                dump_json(&args.json_dir, "ablations", &all);
                all.iter()
                    .map(|a| a.render())
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            _ => unreachable!("validated in parse_args"),
        };
        let _ = writeln!(out, "{text}");
    }
}
