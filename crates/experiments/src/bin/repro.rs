//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all                      # every exhibit at quick scale
//! repro fig5 table3              # selected exhibits
//! repro all --scale full         # paper-scale instruction budgets
//! repro fig10 --json results/    # also dump machine-readable JSON
//! ```
//!
//! The exhibit dispatch lives in [`rebalance_experiments::driver`],
//! shared with the `rebalance paper` subcommand (which adds trace-cache
//! mediation on top).

use std::path::PathBuf;

use rebalance_experiments::driver;
use rebalance_workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: repro [EXHIBIT...] [--scale smoke|quick|full|<factor>] [--json DIR]\n\
         exhibits: all {}",
        driver::EXHIBITS.join(" ")
    );
    std::process::exit(2);
}

struct Args {
    exhibits: Vec<String>,
    scale: Scale,
    json_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut exhibits = Vec::new();
    let mut scale = Scale::Quick;
    let mut json_dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = driver::parse_scale(&v).unwrap_or_else(|| usage());
            }
            "--json" => {
                json_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            name if name == "all" || driver::is_exhibit(name) => exhibits.push(name.to_string()),
            _ => usage(),
        }
    }
    let exhibits = driver::resolve_exhibits(&exhibits).unwrap_or_else(|_| usage());
    Args {
        exhibits,
        scale,
        json_dir,
    }
}

fn main() {
    let args = parse_args();
    let mut out = std::io::stdout().lock();
    if let Err(e) = driver::run_exhibits(
        &args.exhibits,
        args.scale,
        args.json_dir.as_deref(),
        &mut out,
    ) {
        // A closed pipe (`repro ... | head`) is a normal way to stop
        // reading; anything else is a real I/O failure.
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            return;
        }
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
}
