//! The `sampling` exhibit: phase-sampled replay error versus the full
//! replay, for both timing backends, over the paper roster and the
//! kernel archetypes.
//!
//! Phase sampling replays one weighted representative interval per
//! cluster (see `rebalance_trace::sampling`), so its whole value
//! proposition is an error bound: the weighted counters must land
//! within a few percent of the full replay while touching a fraction of
//! the instructions. This exhibit measures exactly that contract —
//! per-workload CPI and per-structure MPKI error under both the
//! closed-form penalty backend and the cycle-level FTQ backend —
//! and the integration suite pins the bands per workload.

use rebalance_coresim::{CoreModel, CoreTiming, FetchModelKind, SectionCpi};
use rebalance_frontend::CoreKind;
use rebalance_trace::SamplingConfig;
use rebalance_workloads::{Scale, Suite, Workload};
use serde::{Deserialize, Serialize};

use crate::util::{self, f2, mean, pct, TextTable};

/// Relative CPI error bound the sampled replay must hold (±2%).
pub const CPI_BAND: f64 = 0.02;

/// Relative MPKI error bound (±5%) …
pub const MPKI_BAND: f64 = 0.05;

/// … with an absolute floor: a structure whose full-replay rate is
/// already below ~0.1 misses per kilo-instruction contributes nothing
/// to CPI, so for those the sampled rate only has to stay within 0.1
/// MPKI absolute (a 5% *relative* band on a 0.001-MPKI rate would be
/// numerology, not validation).
pub const MPKI_FLOOR: f64 = 0.1;

/// Instruction-weighted whole-run CPI of one timing.
pub fn overall_cpi(t: &CoreTiming) -> f64 {
    weighted(t, |s| s.cpi)
}

/// Instruction-weighted whole-run MPKI per structure:
/// `[bp, btb, ras, icache]`.
pub fn overall_mpki(t: &CoreTiming) -> [f64; 4] {
    [
        weighted(t, |s| s.bp_mpki),
        weighted(t, |s| s.btb_mpki),
        weighted(t, |s| s.ras_mpki),
        weighted(t, |s| s.icache_mpki),
    ]
}

fn weighted(t: &CoreTiming, f: impl Fn(&SectionCpi) -> f64) -> f64 {
    let insts = t.serial.insts + t.parallel.insts;
    if insts == 0 {
        0.0
    } else {
        (f(&t.serial) * t.serial.insts as f64 + f(&t.parallel) * t.parallel.insts as f64)
            / insts as f64
    }
}

/// `|sampled - full|` as a fraction of `full`, or 0 when both vanish.
pub fn rel_err(full: f64, sampled: f64) -> f64 {
    if full == 0.0 && sampled == 0.0 {
        0.0
    } else if full == 0.0 {
        f64::INFINITY
    } else {
        (sampled - full).abs() / full
    }
}

/// `true` when a sampled MPKI honors the band contract: within
/// [`MPKI_BAND`] relative, or within [`MPKI_FLOOR`] absolute for rates
/// too small for a relative band to mean anything.
pub fn mpki_within_band(full: f64, sampled: f64) -> bool {
    (sampled - full).abs() <= MPKI_FLOOR || rel_err(full, sampled) <= MPKI_BAND
}

/// Per-workload declared error bands: `(cpi_band, mpki_abs_band)`.
///
/// The universal bands ([`CPI_BAND`] / [`MPKI_BAND`]) assume enough
/// miss events per interval for a cluster representative to estimate
/// its cluster's mean. At `Scale::Smoke` (80 k instructions) the
/// per-interval miss counts of most structures are single digits —
/// irreducible shot noise that no fingerprint can cluster away — so
/// the contract the tests enforce is *declared per workload*: the
/// measured Smoke-scale error of the default
/// [`SamplingConfig`] geometry, widened by 1.5× headroom, floored at
/// the universal bands. The CPI band is relative; the MPKI band is an
/// absolute miss-per-kilo-instruction difference (a relative band on a
/// near-zero rate is numerology). Workloads absent from the table hold
/// the universal bands. Regenerate with
/// `REBALANCE_BLESS=1 cargo test -q --test integration_golden` after a
/// deliberate change to the sampler, then review the diff like any
/// golden.
pub fn declared_bands(workload: &str) -> (f64, f64) {
    const BANDS: &[(&str, f64, f64)] = &[
        ("CoMD", 0.202, 12.2),
        ("CoEVP", 0.193, 17.9),
        ("CoHMM", 0.226, 12.7),
        ("CoSP", 0.160, 9.7),
        ("CoGL", 0.175, 7.6),
        ("LULESH", 0.074, 4.6),
        ("VPFFT", 0.020, 2.5),
        ("ASPA", 0.212, 10.4),
        ("md", 0.030, 4.3),
        ("bwaves", 0.038, 4.6),
        ("nab", 0.020, 0.9),
        ("botsalgn", 0.114, 7.2),
        ("botsspar", 0.127, 6.5),
        ("ilbdc", 0.020, 1.4),
        ("fma3d", 0.164, 8.1),
        ("swim", 0.020, 1.7),
        ("imagick", 0.138, 8.3),
        ("smithwa", 0.108, 7.2),
        ("kdtree", 0.141, 8.4),
        ("BT", 0.033, 2.6),
        ("CG", 0.103, 11.1),
        ("EP", 0.033, 2.3),
        ("FT", 0.026, 2.8),
        ("IS", 0.083, 9.7),
        ("LU", 0.036, 2.3),
        ("MG", 0.062, 5.3),
        ("SP", 0.028, 1.5),
        ("UA", 0.165, 7.8),
        ("DC", 0.080, 4.2),
        ("perlbench", 0.221, 21.4),
        ("bzip2", 0.155, 8.4),
        ("gcc", 0.176, 14.3),
        ("mcf", 0.059, 13.3),
        ("gobmk", 0.201, 11.7),
        ("hmmer", 0.213, 13.0),
        ("sjeng", 0.276, 17.3),
        ("libquantum", 0.089, 9.4),
        ("h264ref", 0.216, 16.2),
        ("omnetpp", 0.145, 14.2),
        ("astar", 0.196, 21.9),
        ("xalancbmk", 0.119, 9.2),
        ("k.stencil", 0.020, 1.4),
        ("k.spmv", 0.163, 30.1),
        ("k.bfs", 0.226, 30.3),
        ("k.fft", 0.020, 1.6),
        ("k.branchy", 0.240, 22.8),
        ("k.triad", 0.020, 1.1),
    ];
    BANDS
        .iter()
        .find(|(w, _, _)| *w == workload)
        .map_or((CPI_BAND, MPKI_FLOOR), |(_, c, m)| (*c, *m))
}

/// Sampled-vs-full errors of one workload under one timing backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingRow {
    /// Workload name.
    pub workload: String,
    /// Owning suite.
    pub suite: Suite,
    /// Timing backend (`penalty` or `ftq`).
    pub model: String,
    /// Whole-run CPI of the full replay.
    pub full_cpi: f64,
    /// Whole-run CPI of the sampled replay.
    pub sampled_cpi: f64,
    /// Relative CPI error.
    pub cpi_err: f64,
    /// Per-structure full-replay MPKI: `[bp, btb, ras, icache]`.
    pub full_mpki: [f64; 4],
    /// Per-structure sampled MPKI: `[bp, btb, ras, icache]`.
    pub sampled_mpki: [f64; 4],
    /// Worst per-structure relative MPKI error (structures under the
    /// absolute floor excluded).
    pub max_mpki_err: f64,
    /// Every structure within the band contract.
    pub mpki_ok: bool,
    /// Fraction of the trace's instructions the sampled replay
    /// delivered.
    pub replayed_fraction: f64,
}

impl SamplingRow {
    /// `true` when this row honors the universal contract: CPI within
    /// [`CPI_BAND`] and every MPKI within its band.
    pub fn within_bands(&self) -> bool {
        self.cpi_err <= CPI_BAND && self.mpki_ok
    }

    /// `true` when this row honors its workload's *declared* contract
    /// (see [`declared_bands`]): CPI within the declared relative band,
    /// and every structure's sampled MPKI within the declared absolute
    /// difference or the universal [`MPKI_BAND`] relative band,
    /// whichever is looser.
    pub fn within_declared_bands(&self) -> bool {
        let (cpi_band, mpki_abs) = declared_bands(&self.workload);
        self.cpi_err <= cpi_band
            && self
                .full_mpki
                .iter()
                .zip(&self.sampled_mpki)
                .all(|(f, s)| (s - f).abs() <= mpki_abs || rel_err(*f, *s) <= MPKI_BAND)
    }
}

/// The `sampling` exhibit: the error table plus the configuration that
/// produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingExhibit {
    /// Sampling knobs used.
    pub config: SamplingConfig,
    /// Two rows (penalty + ftq) per selected workload.
    pub rows: Vec<SamplingRow>,
}

impl SamplingExhibit {
    /// The row for one workload/model pair.
    pub fn row(&self, workload: &str, model: &str) -> Option<&SamplingRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.model == model)
    }

    /// Worst relative CPI error over all rows.
    pub fn worst_cpi_err(&self) -> f64 {
        self.rows.iter().map(|r| r.cpi_err).fold(0.0, f64::max)
    }

    /// Mean replayed-instruction fraction.
    pub fn mean_replayed_fraction(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.replayed_fraction))
    }

    /// Text rendering.
    /// Text rendering. The `in-band` column is the *declared* contract
    /// ([`SamplingRow::within_declared_bands`]) the test suite
    /// enforces; `tight` additionally marks rows that meet the
    /// universal ±2% CPI / ±5% MPKI bands.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "workload", "model", "full", "sampled", "cpi-err", "mpki-err", "replayed", "in-band",
            "tight",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.model.clone(),
                f2(r.full_cpi),
                f2(r.sampled_cpi),
                pct(r.cpi_err),
                pct(r.max_mpki_err),
                pct(r.replayed_fraction),
                if r.within_declared_bands() {
                    "yes"
                } else {
                    "NO"
                }
                .to_owned(),
                if r.within_bands() { "yes" } else { "-" }.to_owned(),
            ]);
        }
        let in_band = self
            .rows
            .iter()
            .filter(|r| r.within_declared_bands())
            .count();
        format!(
            "Sampling: phase-sampled vs full replay ({} intervals, k={})\n{}\
             worst CPI error {}, mean replayed fraction {}, {}/{} rows inside declared bands\n",
            self.config.intervals,
            self.config.k,
            t.render(),
            pct(self.worst_cpi_err()),
            pct(self.mean_replayed_fraction()),
            in_band,
            self.rows.len(),
        )
    }
}

/// Measures the sampled-vs-full error table for `workloads` under
/// `config`. Each workload costs one full replay plus one
/// fingerprinting pass plus one (much shorter) sampled replay; both
/// timing backends share each of those replays through the usual tool
/// fan-out.
pub fn run_subset(
    workloads: Vec<Workload>,
    scale: Scale,
    config: &SamplingConfig,
) -> SamplingExhibit {
    let models = [
        ("penalty", CoreModel::new(CoreKind::Baseline)),
        (
            "ftq",
            CoreModel::new(CoreKind::Baseline).with_fetch_model(FetchModelKind::Ftq),
        ),
    ];
    let tools_for = |_: &Workload| {
        models
            .iter()
            .map(|(_, m)| m.fetch_tools())
            .collect::<Vec<_>>()
    };

    let full = util::sweep(workloads.clone(), scale, tools_for);
    let sampled = util::sweep_sampled(config, workloads, scale, tools_for);

    let mut rows = Vec::new();
    for (f, s) in full.iter().zip(&sampled) {
        debug_assert_eq!(f.item.name(), s.item.name());
        let backend = f.item.profile().backend;
        let fraction = s.plan.replayed_fraction();
        for (mi, (name, model)) in models.iter().enumerate() {
            let full_t = model.timing_of(&f.tools[mi], &backend);
            let sampled_t = model.timing_of(&s.tools[mi], &backend);
            let full_mpki = overall_mpki(&full_t);
            let sampled_mpki = overall_mpki(&sampled_t);
            let max_mpki_err = full_mpki
                .iter()
                .zip(&sampled_mpki)
                .filter(|(f, s)| (**s - **f).abs() > MPKI_FLOOR)
                .map(|(f, s)| rel_err(*f, *s))
                .fold(0.0, f64::max);
            rows.push(SamplingRow {
                workload: f.item.name().to_owned(),
                suite: f.item.suite(),
                model: (*name).to_owned(),
                full_cpi: overall_cpi(&full_t),
                sampled_cpi: overall_cpi(&sampled_t),
                cpi_err: rel_err(overall_cpi(&full_t), overall_cpi(&sampled_t)),
                full_mpki,
                sampled_mpki,
                max_mpki_err,
                mpki_ok: full_mpki
                    .iter()
                    .zip(&sampled_mpki)
                    .all(|(f, s)| mpki_within_band(*f, *s)),
                replayed_fraction: fraction,
            });
        }
    }
    SamplingExhibit {
        config: *config,
        rows,
    }
}

/// Runs the exhibit over the full roster (paper suites + kernel
/// archetypes, narrowed by the active suite filter) with the active
/// sampling configuration (`--sample`/`--sample-k`) or the defaults.
pub fn run(scale: Scale) -> SamplingExhibit {
    let config = util::sampling().unwrap_or_default();
    run_subset(util::roster(), scale, &config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_predicates() {
        assert!(mpki_within_band(10.0, 10.4));
        assert!(!mpki_within_band(10.0, 11.0));
        assert!(mpki_within_band(0.01, 0.05), "floor absorbs tiny rates");
        assert!(mpki_within_band(0.0, 0.0));
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert!((rel_err(2.0, 2.1) - 0.05).abs() < 1e-12);
        assert!(rel_err(0.0, 1.0).is_infinite());
    }

    #[test]
    fn subset_holds_the_error_bands() {
        let ws = vec![
            rebalance_workloads::find("CG").unwrap(),
            rebalance_workloads::find("gcc").unwrap(),
            rebalance_workloads::find("k.triad").unwrap(),
        ];
        let config = SamplingConfig::default();
        let ex = run_subset(ws, Scale::Smoke, &config);
        assert_eq!(ex.rows.len(), 6, "two models per workload");
        for r in &ex.rows {
            assert!(
                r.within_declared_bands(),
                "{}/{}: cpi err {}, mpki err {}",
                r.workload,
                r.model,
                r.cpi_err,
                r.max_mpki_err
            );
            assert!(
                r.replayed_fraction <= 1.0 / config.k as f64 + 1e-9,
                "{}: replayed {}",
                r.workload,
                r.replayed_fraction
            );
        }
        assert!(ex.row("CG", "penalty").is_some());
        assert!(ex.row("CG", "nope").is_none());
        let text = ex.render();
        assert!(text.contains("worst CPI error"), "{text}");
    }
}
