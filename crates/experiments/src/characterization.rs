//! Figures 1–4 and Table I: the architecture-independent
//! characterization, regenerated in one trace pass per workload.

use rebalance_isa::BranchKind;
use rebalance_pintools::{Characterization, NUM_BIAS_BUCKETS};
use rebalance_trace::Section;
use rebalance_workloads::{KernelSpec, Scale, Suite, Workload};
use serde::{Deserialize, Serialize};

use crate::paper;
use crate::util::{self, f1, mean, pct, TextTable};

/// Which bars a row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bars {
    /// Whole execution.
    Total,
    /// Serial sections only.
    Serial,
    /// Parallel sections only.
    Parallel,
}

impl Bars {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Bars::Total => "total",
            Bars::Serial => "serial",
            Bars::Parallel => "parallel",
        }
    }
}

/// One Figure 1 row: branch-type breakdown as % of instructions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Suite.
    pub suite: Suite,
    /// Bars (total/serial/parallel).
    pub bars: Bars,
    /// Percent of instructions: conditional+unconditional direct.
    pub direct: f64,
    /// Percent: calls (direct).
    pub call: f64,
    /// Percent: indirect calls.
    pub indirect_call: f64,
    /// Percent: indirect branches.
    pub indirect_branch: f64,
    /// Percent: returns.
    pub ret: f64,
    /// Percent: syscalls.
    pub syscall: f64,
    /// Total branch percent of instructions.
    pub total_branches: f64,
}

/// Figure 1: dynamic branch instruction breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// Rows in suite / bars order.
    pub rows: Vec<Fig1Row>,
}

impl Fig1 {
    /// Text rendering with the paper's per-suite totals alongside.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "suite",
            "bars",
            "direct%",
            "call%",
            "icall%",
            "ibr%",
            "ret%",
            "sys%",
            "total%",
            "paper-total%",
        ]);
        for r in &self.rows {
            let paper = if r.bars == Bars::Total {
                format!("{:.1}", paper::branch_fraction(r.suite) * 100.0)
            } else {
                String::new()
            };
            t.row(vec![
                r.suite.to_string(),
                r.bars.label().to_string(),
                f1(r.direct),
                format!("{:.2}", r.call),
                format!("{:.3}", r.indirect_call),
                format!("{:.3}", r.indirect_branch),
                format!("{:.2}", r.ret),
                format!("{:.3}", r.syscall),
                f1(r.total_branches),
                paper,
            ]);
        }
        format!(
            "Figure 1: dynamic branch breakdown (% of instructions)\n{}",
            t.render()
        )
    }
}

/// One Figure 2 row: taken-rate bucket shares.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Suite.
    pub suite: Suite,
    /// Bars.
    pub bars: Bars,
    /// Bucket shares (0–10%, ..., >90%), summing to ~1.
    pub buckets: [f64; NUM_BIAS_BUCKETS],
    /// Share of dynamic branches from strongly biased sites.
    pub strongly_biased: f64,
}

/// Figure 2: distribution of branch directions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Rows in suite / bars order.
    pub rows: Vec<Fig2Row>,
}

impl Fig2 {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "suite", "bars", "0-10", "10-20", "20-30", "30-40", "40-50", "50-60", "60-70", "70-80",
            "80-90", ">90", "biased", "paper",
        ]);
        for r in &self.rows {
            let mut cells = vec![r.suite.to_string(), r.bars.label().to_string()];
            cells.extend(r.buckets.iter().map(|b| pct(*b)));
            cells.push(pct(r.strongly_biased));
            cells.push(if r.bars == Bars::Total {
                pct(paper::strongly_biased(r.suite))
            } else {
                String::new()
            });
            t.row(cells);
        }
        format!(
            "Figure 2: conditional-branch taken-rate distribution (dynamic share)\n{}",
            t.render()
        )
    }
}

/// One Table I row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Suite.
    pub suite: Suite,
    /// Backward share of taken conditionals in serial code.
    pub serial_backward: f64,
    /// Backward share in parallel code (0 for SPEC CPU INT).
    pub parallel_backward: f64,
}

/// Table I: backward vs forward taken branches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows per suite.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Text rendering with paper values.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "suite",
            "serial bwd/fwd",
            "parallel bwd/fwd",
            "paper serial",
            "paper parallel",
        ]);
        for r in &self.rows {
            let (ps, pp) = paper::backward_taken(r.suite);
            let par = if !r.suite.has_parallel_sections() {
                "-".to_string()
            } else {
                format!(
                    "{:.0}%/{:.0}%",
                    r.parallel_backward * 100.0,
                    (1.0 - r.parallel_backward) * 100.0
                )
            };
            let paper_par = if !r.suite.has_parallel_sections() {
                "-".to_string()
            } else {
                format!("{:.0}%/{:.0}%", pp * 100.0, (1.0 - pp) * 100.0)
            };
            t.row(vec![
                r.suite.to_string(),
                format!(
                    "{:.0}%/{:.0}%",
                    r.serial_backward * 100.0,
                    (1.0 - r.serial_backward) * 100.0
                ),
                par,
                format!("{:.0}%/{:.0}%", ps * 100.0, (1.0 - ps) * 100.0),
                paper_par,
            ]);
        }
        format!(
            "Table I: backward/forward taken conditional branches\n{}",
            t.render()
        )
    }
}

/// One Figure 3 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Suite.
    pub suite: Suite,
    /// Bars.
    pub bars: Bars,
    /// Average memory for 99% of dynamic instructions, KB.
    pub dyn99_kb: f64,
    /// Average static footprint, KB (same for all bars of a suite).
    pub static_kb: f64,
}

/// Figure 3: instruction footprints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// Rows in suite / bars order.
    pub rows: Vec<Fig3Row>,
}

impl Fig3 {
    /// Text rendering with paper values.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "suite",
            "bars",
            "dyn99 KB",
            "static KB",
            "paper dyn99",
            "paper static",
        ]);
        for r in &self.rows {
            let (pd, ps) = if r.bars == Bars::Total {
                (f1(paper::dyn99_kb(r.suite)), f1(paper::static_kb(r.suite)))
            } else {
                (String::new(), String::new())
            };
            t.row(vec![
                r.suite.to_string(),
                r.bars.label().to_string(),
                f1(r.dyn99_kb),
                f1(r.static_kb),
                pd,
                ps,
            ]);
        }
        format!("Figure 3: instruction footprints\n{}", t.render())
    }
}

/// One Figure 4 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Suite.
    pub suite: Suite,
    /// Bars.
    pub bars: Bars,
    /// Average basic-block length, bytes.
    pub bbl_bytes: f64,
    /// Average distance between taken branches, bytes.
    pub taken_distance: f64,
}

/// Figure 4: basic blocks and taken distances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// Rows in suite / bars order.
    pub rows: Vec<Fig4Row>,
}

impl Fig4 {
    /// Text rendering with paper values.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["suite", "bars", "avg BBL", "taken dist", "paper BBL"]);
        for r in &self.rows {
            t.row(vec![
                r.suite.to_string(),
                r.bars.label().to_string(),
                f1(r.bbl_bytes),
                f1(r.taken_distance),
                if r.bars == Bars::Total {
                    f1(paper::bbl_bytes(r.suite))
                } else {
                    String::new()
                },
            ]);
        }
        format!(
            "Figure 4: basic-block length and taken-branch distance (bytes)\n{}",
            t.render()
        )
    }
}

/// All five characterization exhibits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CharacterizationSet {
    /// Figure 1.
    pub fig1: Fig1,
    /// Figure 2.
    pub fig2: Fig2,
    /// Table I.
    pub table1: Table1,
    /// Figure 3.
    pub fig3: Fig3,
    /// Figure 4.
    pub fig4: Fig4,
}

fn bars_for(suite: Suite) -> Vec<Bars> {
    if suite.has_parallel_sections() {
        vec![Bars::Total, Bars::Serial, Bars::Parallel]
    } else {
        vec![Bars::Total]
    }
}

/// Runs the characterization pass over the whole roster and aggregates
/// per suite. Each workload is one engine item:
/// [`util::characterize_workload`] feeds all five pintools from a
/// single replay (served from the shared trace cache when one is
/// configured), and workloads run in parallel on the shared engine's
/// executor.
pub fn run(scale: Scale) -> CharacterizationSet {
    let workloads = util::roster();
    let characterized = util::engine().map(&workloads, |w| util::characterize_workload(w, scale));
    let results: Vec<(Workload, Characterization)> =
        workloads.into_iter().zip(characterized).collect();

    let mut fig1 = Vec::new();
    let mut fig2 = Vec::new();
    let mut table1 = Vec::new();
    let mut fig3 = Vec::new();
    let mut fig4 = Vec::new();

    for suite in Suite::ALL {
        let in_suite: Vec<&Characterization> = results
            .iter()
            .filter(|(w, _)| w.suite() == suite)
            .map(|(_, c)| c)
            .collect();

        for bars in bars_for(suite) {
            // Figure 1.
            let mix_of = |c: &Characterization| match bars {
                Bars::Total => c.mix.total(),
                Bars::Serial => *c.mix.section(Section::Serial),
                Bars::Parallel => *c.mix.section(Section::Parallel),
            };
            // Suites can mix parallel and purely-serial workloads (the
            // kernel roster does); a section bar averages only the
            // workloads that execute that section.
            let present: Vec<&Characterization> = in_suite
                .iter()
                .copied()
                .filter(|c| mix_of(c).insts > 0)
                .collect();
            let in_suite = &present;
            let avg_kind = |kind: BranchKind| {
                mean(
                    in_suite
                        .iter()
                        .map(|c| mix_of(c).fraction_of_insts(kind) * 100.0),
                )
            };
            fig1.push(Fig1Row {
                suite,
                bars,
                direct: avg_kind(BranchKind::CondDirect) + avg_kind(BranchKind::UncondDirect),
                call: avg_kind(BranchKind::Call),
                indirect_call: avg_kind(BranchKind::IndirectCall),
                indirect_branch: avg_kind(BranchKind::IndirectBranch),
                ret: avg_kind(BranchKind::Return),
                syscall: avg_kind(BranchKind::Syscall),
                total_branches: mean(in_suite.iter().map(|c| mix_of(c).branch_fraction() * 100.0)),
            });

            // Figure 2.
            let bias_of = |c: &Characterization| match bars {
                Bars::Total => c.bias.total,
                Bars::Serial => c.bias.sections.serial,
                Bars::Parallel => c.bias.sections.parallel,
            };
            let mut buckets = [0.0; NUM_BIAS_BUCKETS];
            for (i, b) in buckets.iter_mut().enumerate() {
                *b = mean(in_suite.iter().map(|c| bias_of(c).buckets[i]));
            }
            fig2.push(Fig2Row {
                suite,
                bars,
                buckets,
                strongly_biased: buckets[0] + buckets[NUM_BIAS_BUCKETS - 1],
            });

            // Figure 3.
            let fp_of = |c: &Characterization| match bars {
                Bars::Total => c.footprint.total,
                Bars::Serial => c.footprint.sections.serial,
                Bars::Parallel => c.footprint.sections.parallel,
            };
            fig3.push(Fig3Row {
                suite,
                bars,
                dyn99_kb: mean(in_suite.iter().map(|c| fp_of(c).dyn99_kb())),
                static_kb: mean(in_suite.iter().map(|c| c.footprint.static_kb())),
            });

            // Figure 4.
            let bb_of = |c: &Characterization| match bars {
                Bars::Total => c.basic_blocks.total(),
                Bars::Serial => *c.basic_blocks.section(Section::Serial),
                Bars::Parallel => *c.basic_blocks.section(Section::Parallel),
            };
            fig4.push(Fig4Row {
                suite,
                bars,
                bbl_bytes: mean(in_suite.iter().map(|c| bb_of(c).avg_block_bytes())),
                taken_distance: mean(in_suite.iter().map(|c| bb_of(c).avg_taken_distance())),
            });
        }

        // Table I. As above, section averages cover only the workloads
        // executing that section.
        table1.push(Table1Row {
            suite,
            serial_backward: mean(
                in_suite
                    .iter()
                    .filter(|c| c.mix.section(Section::Serial).insts > 0)
                    .map(|c| c.direction.section(Section::Serial).backward_fraction()),
            ),
            parallel_backward: if suite.has_parallel_sections() {
                mean(
                    in_suite
                        .iter()
                        .filter(|c| c.mix.section(Section::Parallel).insts > 0)
                        .map(|c| c.direction.section(Section::Parallel).backward_fraction()),
                )
            } else {
                0.0
            },
        });
    }

    CharacterizationSet {
        fig1: Fig1 { rows: fig1 },
        fig2: Fig2 { rows: fig2 },
        table1: Table1 { rows: table1 },
        fig3: Fig3 { rows: fig3 },
        fig4: Fig4 { rows: fig4 },
    }
}

/// One kernel-archetype row: measured characterization next to the
/// [`KernelSpec`] design targets it was generated from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelsRow {
    /// Workload name.
    pub workload: String,
    /// Archetype label.
    pub archetype: String,
    /// Measured overall branch fraction.
    pub branch_fraction: f64,
    /// The spec's section-weighted branch-fraction target.
    pub target_branch_fraction: f64,
    /// Measured share of dynamic conditionals from strongly biased
    /// sites.
    pub strongly_biased: f64,
    /// Measured kernel-section 99% dynamic footprint, KB.
    pub dyn99_kb: f64,
    /// The spec's kernel hot-footprint target, KB.
    pub target_hot_kb: f64,
    /// Measured average basic-block length, bytes.
    pub bbl_bytes: f64,
    /// Schedule epochs (phase-shape knob).
    pub epochs: u32,
    /// Footprint drift windows (phase-shape knob).
    pub drift_windows: u32,
}

/// The kernels sweep: per-archetype characterization vs design targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelsSet {
    /// One row per kernel workload.
    pub rows: Vec<KernelsRow>,
}

impl KernelsSet {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "workload",
            "archetype",
            "bf%",
            "target bf%",
            "biased",
            "dyn99 KB",
            "target KB",
            "avg BBL",
            "epochs",
            "drift",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.archetype.clone(),
                f1(r.branch_fraction * 100.0),
                f1(r.target_branch_fraction * 100.0),
                pct(r.strongly_biased),
                f1(r.dyn99_kb),
                f1(r.target_hot_kb),
                f1(r.bbl_bytes),
                r.epochs.to_string(),
                r.drift_windows.to_string(),
            ]);
        }
        format!(
            "Kernels: archetype characterization vs design targets\n{}",
            t.render()
        )
    }
}

/// Runs the characterization pass over the kernel-archetype roster
/// only, one engine item per workload, reporting measured values
/// against each [`KernelSpec`]'s design targets.
pub fn kernels(scale: Scale) -> KernelsSet {
    let workloads = util::filtered(rebalance_workloads::kernels());
    let characterized = util::engine().map(&workloads, |w| util::characterize_workload(w, scale));
    let rows = workloads
        .iter()
        .zip(characterized)
        .map(|(w, c)| {
            let spec = KernelSpec::find(w.name()).expect("kernel roster name has a spec");
            let serial_only = w.profile().serial_fraction >= 1.0;
            let kernel_fp = if serial_only {
                c.footprint.sections.serial
            } else {
                c.footprint.sections.parallel
            };
            let mix = c.mix.total();
            KernelsRow {
                workload: w.name().to_owned(),
                archetype: format!("{:?}", spec.archetype),
                branch_fraction: mix.branch_fraction(),
                target_branch_fraction: spec.target_branch_fraction(),
                strongly_biased: c.bias.total.strongly_biased_fraction(),
                dyn99_kb: kernel_fp.dyn99_kb(),
                target_hot_kb: spec.hot_kb,
                bbl_bytes: c.basic_blocks.total().avg_block_bytes(),
                epochs: spec.phases.epochs,
                drift_windows: spec.phases.drift_windows,
            }
        })
        .collect();
    KernelsSet { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_set() -> CharacterizationSet {
        run(Scale::Smoke)
    }

    #[test]
    fn characteristic_1_branch_ratio_shape() {
        let set = smoke_set();
        let total = |suite: Suite| {
            set.fig1
                .rows
                .iter()
                .find(|r| r.suite == suite && r.bars == Bars::Total)
                .unwrap()
                .total_branches
        };
        // HPC has ~3x fewer branches than desktop.
        assert!(total(Suite::SpecCpuInt) > 2.0 * total(Suite::SpecOmp));
        assert!(total(Suite::SpecCpuInt) > 2.0 * total(Suite::Npb));
        assert!(total(Suite::ExMatEx) > total(Suite::Npb));
        // Serial sections are branchier than parallel inside HPC apps.
        let ser = set
            .fig1
            .rows
            .iter()
            .find(|r| r.suite == Suite::Npb && r.bars == Bars::Serial)
            .unwrap()
            .total_branches;
        let par = set
            .fig1
            .rows
            .iter()
            .find(|r| r.suite == Suite::Npb && r.bars == Bars::Parallel)
            .unwrap()
            .total_branches;
        assert!(ser > 1.5 * par, "serial {ser} vs parallel {par}");
    }

    #[test]
    fn characteristic_2_bias_shape() {
        let set = smoke_set();
        let biased = |suite: Suite| {
            set.fig2
                .rows
                .iter()
                .find(|r| r.suite == suite && r.bars == Bars::Total)
                .unwrap()
                .strongly_biased
        };
        assert!(biased(Suite::Npb) > 0.7, "NPB {:.2}", biased(Suite::Npb));
        assert!(
            biased(Suite::Npb) > biased(Suite::SpecCpuInt) + 0.15,
            "NPB {:.2} vs INT {:.2}",
            biased(Suite::Npb),
            biased(Suite::SpecCpuInt)
        );
        // Histograms sum to 1.
        for r in &set.fig2.rows {
            let sum: f64 = r.buckets.iter().sum();
            if sum > 0.0 {
                assert!((sum - 1.0).abs() < 1e-6, "{:?} {:?}", r.suite, r.bars);
            }
        }
    }

    #[test]
    fn table1_backward_shape() {
        let set = smoke_set();
        let row = |s: Suite| set.table1.rows.iter().find(|r| r.suite == s).unwrap();
        // HPC parallel code is strongly backward-taken.
        assert!(row(Suite::Npb).parallel_backward > 0.68);
        assert!(row(Suite::SpecOmp).parallel_backward > 0.62);
        // Desktop splits much more evenly.
        let int = row(Suite::SpecCpuInt).serial_backward;
        assert!((0.38..=0.70).contains(&int), "SPEC INT backward {int:.2}");
        assert!(row(Suite::Npb).parallel_backward > int + 0.10);
    }

    #[test]
    fn characteristic_3_footprints_shape() {
        let set = smoke_set();
        let total = |s: Suite| {
            set.fig3
                .rows
                .iter()
                .find(|r| r.suite == s && r.bars == Bars::Total)
                .unwrap()
        };
        // Desktop 99% footprints dwarf HPC ones.
        assert!(total(Suite::SpecCpuInt).dyn99_kb > 2.0 * total(Suite::Npb).dyn99_kb);
        // Static footprints: ExMatEx biggest among HPC (libraries).
        assert!(total(Suite::ExMatEx).static_kb > total(Suite::Npb).static_kb);
        assert!(total(Suite::ExMatEx).static_kb > total(Suite::SpecOmp).static_kb);
    }

    #[test]
    fn characteristic_4_bbl_shape() {
        let set = smoke_set();
        let par = |s: Suite| {
            set.fig4
                .rows
                .iter()
                .find(|r| {
                    r.suite == s
                        && r.bars
                            == if s.is_hpc() {
                                Bars::Parallel
                            } else {
                                Bars::Total
                            }
                })
                .unwrap()
        };
        // HPC basic blocks are several times longer than desktop ones.
        let hpc_bbl = (par(Suite::ExMatEx).bbl_bytes
            + par(Suite::SpecOmp).bbl_bytes
            + par(Suite::Npb).bbl_bytes)
            / 3.0;
        assert!(
            hpc_bbl > 2.5 * par(Suite::SpecCpuInt).bbl_bytes,
            "HPC {hpc_bbl:.0}B vs INT {:.0}B",
            par(Suite::SpecCpuInt).bbl_bytes
        );
        // Taken distance exceeds block length everywhere.
        for r in &set.fig4.rows {
            if r.bbl_bytes > 0.0 {
                assert!(r.taken_distance >= r.bbl_bytes * 0.9);
            }
        }
    }

    #[test]
    fn kernels_sweep_reports_measured_vs_targets() {
        let set = kernels(Scale::Smoke);
        assert!(set.rows.len() >= 6, "six archetypes minimum");
        for r in &set.rows {
            assert!(r.branch_fraction > 0.0, "{}", r.workload);
            let rel =
                (r.branch_fraction - r.target_branch_fraction).abs() / r.target_branch_fraction;
            assert!(
                rel < 0.5,
                "{}: measured bf {:.4} far from target {:.4}",
                r.workload,
                r.branch_fraction,
                r.target_branch_fraction
            );
            assert!(r.dyn99_kb > 0.0, "{}", r.workload);
        }
        // The archetype spectrum survives measurement: streaming is far
        // less branchy than the desktop-style kernel.
        let bf = |name: &str| {
            set.rows
                .iter()
                .find(|r| r.workload == name)
                .unwrap()
                .branch_fraction
        };
        assert!(bf("k.branchy") > 5.0 * bf("k.triad"));
        let text = set.render();
        assert!(text.contains("k.stencil") && text.contains("target"));
    }

    #[test]
    fn renders_are_nonempty() {
        let set = smoke_set();
        for s in [
            set.fig1.render(),
            set.fig2.render(),
            set.table1.render(),
            set.fig3.render(),
            set.fig4.render(),
        ] {
            assert!(s.lines().count() > 5);
            assert!(s.contains("ExMatEx"));
        }
    }
}
