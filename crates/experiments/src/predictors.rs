//! Table II and Figures 5–6: branch-predictor evaluation.

use rebalance_frontend::predictor::{DirectionPredictor, PredictorReport, PredictorSim};
use rebalance_frontend::{PredictorChoice, PredictorClass, PredictorSize};
use rebalance_workloads::{Scale, Suite, Workload};
use serde::{Deserialize, Serialize};

use crate::paper;
use crate::util::{self, f2, mean, TextTable};

/// Table II: the evaluated predictor parameterizations and their
/// realized hardware budgets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// `(label, budget_bytes)` per configuration.
    pub rows: Vec<(String, u64)>,
}

/// Builds Table II from the actual implementations.
pub fn table2() -> Table2 {
    let rows = PredictorChoice::figure5_set()
        .into_iter()
        .map(|c| (c.label(), c.build().budget_bits() / 8))
        .collect();
    Table2 { rows }
}

impl Table2 {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["configuration", "budget (bytes)", "class"]);
        for (label, bytes) in &self.rows {
            let class = if label.contains("big") {
                "~16KB"
            } else {
                "~2KB"
            };
            t.row(vec![label.clone(), bytes.to_string(), class.to_string()]);
        }
        format!(
            "Table II: predictor configurations at matched hardware cost\n{}",
            t.render()
        )
    }
}

/// One Figure 5 row: per-suite branch MPKI for one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Configuration label (paper legend order).
    pub config: String,
    /// Mean MPKI per suite, in [`Suite::ALL`] order.
    pub mpki: [f64; Suite::COUNT],
}

/// Figure 5: branch MPKI across predictors and suites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// Rows in the paper's legend order.
    pub rows: Vec<Fig5Row>,
}

impl Fig5 {
    /// MPKI for a config/suite pair.
    pub fn mpki(&self, config: &str, suite: Suite) -> Option<f64> {
        let idx = Suite::ALL.iter().position(|s| *s == suite)?;
        self.rows
            .iter()
            .find(|r| r.config == config)
            .map(|r| r.mpki[idx])
    }

    /// Text rendering with the paper's gshare-big row for comparison.
    pub fn render(&self) -> String {
        let mut header = vec!["config".to_owned()];
        header.extend(Suite::ALL.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![r.config.clone()];
            cells.extend(r.mpki.iter().map(|m| f2(*m)));
            t.row(cells);
        }
        let paper_row: Vec<String> = Suite::ALL
            .iter()
            .map(|s| f2(paper::gshare_big_mpki(*s)))
            .collect();
        format!(
            "Figure 5: branch MPKI per predictor configuration\n{}\npaper gshare-big: {}\n",
            t.render(),
            paper_row.join(" / ")
        )
    }
}

/// Runs Figure 5: all nine predictor configurations over every workload
/// in one trace pass per workload.
pub fn fig5(scale: Scale) -> Fig5 {
    let configs = PredictorChoice::figure5_set();
    let results: Vec<(Workload, Vec<PredictorReport>)> = util::sweep(util::roster(), scale, |_| {
        PredictorChoice::build_sims(&configs)
    })
    .into_iter()
    .map(|o| (o.item, o.tools.iter().map(PredictorSim::report).collect()))
    .collect();

    let rows = configs
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            let mut mpki = [0.0; Suite::COUNT];
            for (si, suite) in Suite::ALL.iter().enumerate() {
                mpki[si] = mean(
                    results
                        .iter()
                        .filter(|(w, _)| w.suite() == *suite)
                        .map(|(_, reports)| reports[ci].total().mpki()),
                );
            }
            Fig5Row {
                config: c.label(),
                mpki,
            }
        })
        .collect();
    Fig5 { rows }
}

/// One kernels-sweep row: per-configuration branch MPKI for one kernel
/// archetype workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelsSweepRow {
    /// Workload name.
    pub workload: String,
    /// MPKI per configuration, in [`KernelsSweep::configs`] order.
    pub mpki: Vec<f64>,
}

/// The kernels predictor sweep: all nine Figure 5 configurations over
/// the kernel-archetype roster, one replay per workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelsSweep {
    /// Configuration labels (paper legend order).
    pub configs: Vec<String>,
    /// One row per kernel workload.
    pub rows: Vec<KernelsSweepRow>,
}

impl KernelsSweep {
    /// Looks one cell up.
    pub fn mpki(&self, workload: &str, config: &str) -> Option<f64> {
        let ci = self.configs.iter().position(|c| c == config)?;
        self.rows
            .iter()
            .find(|r| r.workload == workload)
            .map(|r| r.mpki[ci])
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut header = vec!["workload".to_owned()];
        header.extend(self.configs.iter().cloned());
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![r.workload.clone()];
            cells.extend(r.mpki.iter().map(|m| f2(*m)));
            t.row(cells);
        }
        format!(
            "Kernels: branch MPKI per predictor configuration\n{}",
            t.render()
        )
    }
}

/// Runs the nine-configuration predictor sweep over the kernel
/// archetypes, per workload instead of per suite (the archetypes are
/// the point, not their mean).
pub fn kernels_sweep(scale: Scale) -> KernelsSweep {
    let configs = PredictorChoice::figure5_set();
    let rows = util::sweep(
        util::filtered(rebalance_workloads::kernels()),
        scale,
        |_| PredictorChoice::build_sims(&configs),
    )
    .into_iter()
    .map(|o| KernelsSweepRow {
        workload: o.item.name().to_owned(),
        mpki: o.tools.iter().map(|s| s.report().total().mpki()).collect(),
    })
    .collect();
    KernelsSweep {
        configs: configs.iter().map(|c| c.label()).collect(),
        rows,
    }
}

/// The benchmarks Figure 6 highlights.
pub const FIG6_WORKLOADS: [&str; 9] = [
    "CoEVP",
    "CoMD",
    "botsspar",
    "imagick",
    "EP",
    "FT",
    "astar",
    "gobmk",
    "xalancbmk",
];

/// One Figure 6 bar: misprediction breakdown for one gshare variant on
/// one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Benchmark name.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// MPKI from actually-not-taken branches.
    pub not_taken: f64,
    /// MPKI from taken-backward branches.
    pub taken_backward: f64,
    /// MPKI from taken-forward branches.
    pub taken_forward: f64,
}

impl Fig6Row {
    /// Total MPKI of the bar.
    pub fn total(&self) -> f64 {
        self.not_taken + self.taken_backward + self.taken_forward
    }
}

/// Figure 6: gshare misprediction breakdown on highlighted benchmarks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// Rows grouped by workload, three bars each.
    pub rows: Vec<Fig6Row>,
}

impl Fig6 {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "workload",
            "config",
            "not-taken",
            "taken-bwd",
            "taken-fwd",
            "total",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.config.clone(),
                f2(r.not_taken),
                f2(r.taken_backward),
                f2(r.taken_forward),
                f2(r.total()),
            ]);
        }
        format!(
            "Figure 6: gshare branch MPKI breakdown (mispredictions by actual trajectory)\n{}",
            t.render()
        )
    }
}

/// Runs Figure 6 over the highlighted subset: all three gshare variants
/// share one replay per workload.
pub fn fig6(scale: Scale) -> Fig6 {
    let configs = [
        PredictorChoice::new(PredictorClass::Gshare, PredictorSize::Big, false),
        PredictorChoice::new(PredictorClass::Gshare, PredictorSize::Small, false),
        PredictorChoice::new(PredictorClass::Gshare, PredictorSize::Small, true),
    ];
    let subset = util::filtered(
        FIG6_WORKLOADS
            .iter()
            .map(|n| rebalance_workloads::find(n).expect("figure 6 roster name"))
            .collect(),
    );
    let rows = util::sweep(subset, scale, |_| PredictorChoice::build_sims(&configs))
        .into_iter()
        .flat_map(|o| {
            configs
                .iter()
                .zip(&o.tools)
                .map(|(c, sim)| {
                    let total = sim.report().total();
                    let scale_mpki = |n: u64| {
                        if total.insts == 0 {
                            0.0
                        } else {
                            n as f64 * 1000.0 / total.insts as f64
                        }
                    };
                    Fig6Row {
                        workload: o.item.name().to_owned(),
                        config: c.label(),
                        not_taken: scale_mpki(total.breakdown.not_taken),
                        taken_backward: scale_mpki(total.breakdown.taken_backward),
                        taken_forward: scale_mpki(total.breakdown.taken_forward),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();
    Fig6 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_budgets_match_classes() {
        let t = table2();
        assert_eq!(t.rows.len(), 9);
        for (label, bytes) in &t.rows {
            if label.contains("big") {
                assert!((10_000..=17_000).contains(bytes), "{label}: {bytes}");
            } else {
                assert!((1_000..=2_700).contains(bytes), "{label}: {bytes}");
            }
        }
        assert!(t.render().contains("gshare-big"));
    }

    #[test]
    fn fig5_shape_holds_at_smoke_scale() {
        let f = fig5(Scale::Smoke);
        assert_eq!(f.rows.len(), 9);
        // Desktop worst for every configuration.
        for r in &f.rows {
            assert!(
                r.mpki[3] > r.mpki[1] && r.mpki[3] > r.mpki[2],
                "{}: {:?}",
                r.config,
                r.mpki
            );
        }
        // The loop BP helps HPC suites on the small gshare.
        let small = f.mpki("gshare-small", Suite::Npb).unwrap();
        let with_loop = f.mpki("L-gshare-small", Suite::Npb).unwrap();
        assert!(with_loop <= small + 0.05, "{with_loop} vs {small}");
        assert!(f.render().contains("Figure 5"));
    }

    #[test]
    fn kernels_sweep_orders_archetypes_by_difficulty() {
        let k = kernels_sweep(Scale::Smoke);
        assert_eq!(k.configs.len(), 9);
        assert!(k.rows.len() >= 6);
        // The streaming and stencil kernels are nearly perfectly
        // predicted; the branchy/graph kernels are the hard ones.
        let big = "tage-big";
        let easy = k.mpki("k.triad", big).unwrap();
        let hard = k
            .mpki("k.branchy", big)
            .unwrap()
            .max(k.mpki("k.bfs", big).unwrap());
        assert!(
            hard > 3.0 * easy.max(0.05),
            "hard {hard:.2} vs easy {easy:.2}"
        );
        assert!(k.render().contains("k.spmv"));
    }

    #[test]
    fn fig6_covers_the_paper_subset() {
        // The loop BP needs several completed loop executions per site
        // to become confident; smoke-scale traces are too short.
        let f = fig6(Scale::Custom(0.12));
        assert_eq!(f.rows.len(), 9 * 3);
        // imagick/botsspar: the loop BP should remove most taken-backward
        // misses (constant trip counts).
        for name in ["imagick", "botsspar"] {
            let small = f
                .rows
                .iter()
                .find(|r| r.workload == name && r.config == "gshare-small")
                .unwrap();
            let lbp = f
                .rows
                .iter()
                .find(|r| r.workload == name && r.config == "L-gshare-small")
                .unwrap();
            // Direction check: the steady-state elimination the paper
            // reports needs billion-instruction runs; at this scale we
            // verify the LBP strictly reduces taken-backward misses.
            assert!(
                lbp.taken_backward < small.taken_backward,
                "{name}: L {:.2} vs small {:.2}",
                lbp.taken_backward,
                small.taken_backward
            );
            assert!(
                lbp.total() <= small.total() + 0.05,
                "{name}: LBP must not hurt overall ({:.2} vs {:.2})",
                lbp.total(),
                small.total()
            );
        }
        assert!(f.render().contains("astar"));
    }
}
