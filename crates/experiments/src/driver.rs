//! The exhibit driver shared by the `repro` binary and the `rebalance
//! paper` subcommand: name → regenerator dispatch, scale parsing, and
//! optional JSON dumping.

use std::io::{self, Write};
use std::path::Path;

use rebalance_workloads::Scale;

use crate::{ablations, caches, characterization, cmp, detail, fetchsim, predictors, sampling};

/// Every exhibit name the driver understands, in paper order (the
/// `kernels` exhibit — archetype characterization + predictor sweep —
/// the `fetchsim` decoupled-front-end grid, and the `sampling`
/// phase-sampling validation are ours, appended after the paper's).
pub const EXHIBITS: [&str; 19] = [
    "fig1",
    "fig2",
    "table1",
    "fig3",
    "fig4",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table3",
    "fig10",
    "fig11",
    "ablations",
    "detail",
    "kernels",
    "fetchsim",
    "sampling",
];

/// `true` if `name` is a known exhibit.
pub fn is_exhibit(name: &str) -> bool {
    EXHIBITS.contains(&name)
}

/// Expands an exhibit argument list: `all` expands to every exhibit,
/// an empty list defaults to every exhibit, duplicates (adjacent or
/// not) are dropped while preserving first-occurrence order.
///
/// # Errors
///
/// The first unknown exhibit name.
pub fn resolve_exhibits(names: &[String]) -> Result<Vec<String>, String> {
    let mut resolved = Vec::new();
    for name in names {
        if name == "all" {
            resolved.extend(EXHIBITS.iter().map(|s| s.to_string()));
        } else if is_exhibit(name) {
            resolved.push(name.clone());
        } else {
            return Err(format!(
                "unknown exhibit `{name}` (expected: all {})",
                EXHIBITS.join(" ")
            ));
        }
    }
    if resolved.is_empty() {
        resolved.extend(EXHIBITS.iter().map(|s| s.to_string()));
    }
    let mut seen = std::collections::HashSet::new();
    resolved.retain(|name| seen.insert(name.clone()));
    Ok(resolved)
}

/// Parses a scale argument: `smoke`, `quick`, `full`, or a positive
/// float multiplier.
pub fn parse_scale(arg: &str) -> Option<Scale> {
    match arg {
        "smoke" => Some(Scale::Smoke),
        "quick" => Some(Scale::Quick),
        "full" => Some(Scale::Full),
        other => match other.parse::<f64>() {
            Ok(f) if f > 0.0 && f.is_finite() => Some(Scale::Custom(f)),
            _ => None,
        },
    }
}

fn dump_json<T: serde::Serialize>(dir: Option<&Path>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Regenerates the given exhibits at `scale`, writing each rendering to
/// `out` (and a JSON dump per exhibit into `json_dir` when given).
/// Unknown names are skipped with a warning on stderr; exhibits sharing
/// a sweep (the characterization set, the Figure 10 CMP runs) compute
/// it once.
///
/// # Errors
///
/// Propagates write failures on `out`.
pub fn run_exhibits(
    exhibits: &[String],
    scale: Scale,
    json_dir: Option<&Path>,
    out: &mut dyn Write,
) -> io::Result<()> {
    let needs_characterization = exhibits
        .iter()
        .any(|e| matches!(e.as_str(), "fig1" | "fig2" | "table1" | "fig3" | "fig4"));
    let characterization_set = needs_characterization.then(|| characterization::run(scale));

    let needs_cmp_runs = exhibits.iter().any(|e| e == "fig10");
    let cmp_runs = needs_cmp_runs.then(|| cmp::run_cmps(scale));

    for exhibit in exhibits {
        let text = match exhibit.as_str() {
            "fig1" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(json_dir, "fig1", &set.fig1);
                set.fig1.render()
            }
            "fig2" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(json_dir, "fig2", &set.fig2);
                set.fig2.render()
            }
            "table1" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(json_dir, "table1", &set.table1);
                set.table1.render()
            }
            "fig3" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(json_dir, "fig3", &set.fig3);
                set.fig3.render()
            }
            "fig4" => {
                let set = characterization_set.as_ref().expect("precomputed");
                dump_json(json_dir, "fig4", &set.fig4);
                set.fig4.render()
            }
            "table2" => {
                let t = predictors::table2();
                dump_json(json_dir, "table2", &t);
                t.render()
            }
            "fig5" => {
                let f = predictors::fig5(scale);
                dump_json(json_dir, "fig5", &f);
                f.render()
            }
            "fig6" => {
                let f = predictors::fig6(scale);
                dump_json(json_dir, "fig6", &f);
                f.render()
            }
            "fig7" => {
                let f = caches::fig7(scale);
                dump_json(json_dir, "fig7", &f);
                f.render()
            }
            "fig8" => {
                let f = caches::fig8(scale);
                dump_json(json_dir, "fig8", &f);
                f.render()
            }
            "fig9" => {
                let f = caches::fig9(scale);
                dump_json(json_dir, "fig9", &f);
                f.render()
            }
            "table3" => {
                let t = cmp::table3();
                dump_json(json_dir, "table3", &t);
                t.render()
            }
            "fig10" => {
                let runs = cmp_runs.as_ref().expect("precomputed");
                let f = cmp::fig10_from_runs(runs);
                dump_json(json_dir, "fig10", &f);
                dump_json(json_dir, "fig10_raw", runs);
                f.render()
            }
            "fig11" => {
                let f = cmp::fig11(scale);
                dump_json(json_dir, "fig11", &f);
                f.render()
            }
            "detail" => {
                let d = detail::run(scale);
                dump_json(json_dir, "detail", &d);
                d.render()
            }
            "kernels" => {
                let c = characterization::kernels(scale);
                let p = predictors::kernels_sweep(scale);
                dump_json(json_dir, "kernels_characterization", &c);
                dump_json(json_dir, "kernels_predictors", &p);
                format!("{}\n{}", c.render(), p.render())
            }
            "fetchsim" => {
                let f = fetchsim::run(scale);
                dump_json(json_dir, "fetchsim", &f);
                f.render()
            }
            "sampling" => {
                let s = sampling::run(scale);
                dump_json(json_dir, "sampling", &s);
                s.render()
            }
            "ablations" => {
                let all = ablations::run_all(scale);
                dump_json(json_dir, "ablations", &all);
                all.iter()
                    .map(|a| a.render())
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            other => {
                eprintln!("warning: unknown exhibit `{other}` skipped");
                continue;
            }
        };
        writeln!(out, "{text}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhibit_names_are_known() {
        assert!(is_exhibit("fig5"));
        assert!(is_exhibit("ablations"));
        assert!(is_exhibit("kernels"));
        assert!(is_exhibit("fetchsim"));
        assert!(is_exhibit("sampling"));
        assert!(!is_exhibit("fig99"));
        assert_eq!(EXHIBITS.len(), 19);
    }

    #[test]
    fn resolve_expands_validates_and_dedups() {
        let names = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(resolve_exhibits(&[]).unwrap().len(), 19);
        assert_eq!(resolve_exhibits(&names(&["all"])).unwrap().len(), 19);
        // Non-adjacent duplicates are dropped, order preserved.
        assert_eq!(
            resolve_exhibits(&names(&["fig5", "table2", "fig5"])).unwrap(),
            names(&["fig5", "table2"])
        );
        assert!(resolve_exhibits(&names(&["fig99"]))
            .unwrap_err()
            .contains("fig99"));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("smoke"), Some(Scale::Smoke));
        assert_eq!(parse_scale("quick"), Some(Scale::Quick));
        assert_eq!(parse_scale("full"), Some(Scale::Full));
        assert_eq!(parse_scale("0.5"), Some(Scale::Custom(0.5)));
        assert_eq!(parse_scale("0"), None);
        assert_eq!(parse_scale("-1"), None);
        assert_eq!(parse_scale("nan"), None);
        assert_eq!(parse_scale("bogus"), None);
    }

    #[test]
    fn run_exhibits_renders_table2() {
        // table2 is cheap: it needs no trace replay at all.
        let mut out = Vec::new();
        run_exhibits(&["table2".to_owned()], Scale::Smoke, None, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Table II"), "{text}");
    }
}
