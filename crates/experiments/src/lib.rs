//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each exhibit has a `run` function returning a serializable result and
//! a text rendering that mirrors the paper's rows/series, with the
//! paper's reported values alongside where the paper gives them:
//!
//! | module | exhibits |
//! |---|---|
//! | [`characterization`] | Figures 1–4, Table I (one trace pass) |
//! | [`predictors`] | Table II, Figures 5 and 6 |
//! | [`caches`] | Figures 7, 8, 9 |
//! | [`cmp`] | Table III, Figures 10 and 11 |
//! | [`ablations`] | design-choice ablations + the thread-scaling study |
//! | [`detail`] | per-benchmark characterization rows |
//! | [`fetchsim`] | decoupled front-end (FTQ + FDIP) design grid |
//! | [`sampling`] | phase-sampled vs full-replay error validation |
//!
//! The `repro` binary drives them:
//!
//! ```text
//! repro all --scale quick
//! repro fig5 table3 --scale full --json results/
//! ```
//!
//! # Examples
//!
//! ```
//! use rebalance_experiments::characterization;
//! use rebalance_workloads::Scale;
//!
//! let set = characterization::run(Scale::Smoke);
//! // 3 HPC suites and the kernel archetypes get total/serial/parallel
//! // bars; the sequentially-run SPEC CPU INT gets totals only.
//! assert_eq!(set.fig1.rows.len(), 4 * 3 + 1);
//! println!("{}", set.fig1.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod caches;
pub mod characterization;
pub mod cmp;
pub mod detail;
pub mod driver;
pub mod fetchsim;
pub mod paper;
pub mod predictors;
pub mod sampling;
pub mod util;
