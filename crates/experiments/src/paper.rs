//! Reference values reported by the paper, for side-by-side comparison.
//!
//! Table values are quoted exactly; figure values are read off the
//! published plots and are approximate (±10–20%). Where the paper gives
//! only qualitative statements, the constants encode the stated ratios.
//!
//! [`Suite::Kernels`] is not in the paper: its entries are the *design
//! targets* of the kernel-archetype generator (suite means over the
//! [`KernelSpec`](rebalance_workloads::KernelSpec) roster), so the
//! side-by-side columns stay meaningful for our synthetic suite too.

use rebalance_workloads::Suite;

/// Figure 1: total branch fraction per suite (fraction of instructions).
pub fn branch_fraction(suite: Suite) -> f64 {
    match suite {
        Suite::ExMatEx => 0.13,
        Suite::SpecOmp => 0.07,
        Suite::Npb => 0.07,
        Suite::SpecCpuInt => 0.19,
        Suite::Kernels => 0.11,
    }
}

/// Table I: backward share of taken branches (serial, parallel).
/// SPEC CPU INT has a single (serial) number.
pub fn backward_taken(suite: Suite) -> (f64, f64) {
    match suite {
        Suite::ExMatEx => (0.72, 0.69),
        Suite::SpecOmp => (0.73, 0.74),
        Suite::Npb => (0.71, 0.80),
        Suite::SpecCpuInt => (0.56, 0.56),
        Suite::Kernels => (0.55, 0.70),
    }
}

/// Figure 2: fraction of dynamic conditional branches from strongly
/// biased sites (<10% or >90% taken), per suite.
pub fn strongly_biased(suite: Suite) -> f64 {
    match suite {
        Suite::ExMatEx => 0.80,
        Suite::SpecOmp => 0.85,
        Suite::Npb => 0.90,
        Suite::SpecCpuInt => 0.55,
        Suite::Kernels => 0.75,
    }
}

/// Figure 3: average static footprint in KB per suite.
pub fn static_kb(suite: Suite) -> f64 {
    match suite {
        Suite::ExMatEx => 242.0,
        Suite::SpecOmp => 121.0,
        Suite::Npb => 121.0,
        Suite::SpecCpuInt => 300.0,
        Suite::Kernels => 170.0,
    }
}

/// Figure 3: average memory for 99% of dynamic instructions (KB),
/// parallel sections for HPC / total for SPEC CPU INT.
pub fn dyn99_kb(suite: Suite) -> f64 {
    match suite {
        Suite::ExMatEx => 18.0,
        Suite::SpecOmp => 12.0,
        Suite::Npb => 12.0,
        Suite::SpecCpuInt => 75.0,
        Suite::Kernels => 10.0,
    }
}

/// Figure 4: average basic-block bytes (parallel for HPC).
pub fn bbl_bytes(suite: Suite) -> f64 {
    match suite {
        Suite::ExMatEx => 60.0,
        Suite::SpecOmp => 90.0,
        Suite::Npb => 100.0,
        Suite::SpecCpuInt => 20.0,
        Suite::Kernels => 140.0,
    }
}

/// Figure 5: branch MPKI with the big gshare per suite (read off plot).
pub fn gshare_big_mpki(suite: Suite) -> f64 {
    match suite {
        Suite::ExMatEx => 2.7,
        Suite::SpecOmp => 1.6,
        Suite::Npb => 1.6,
        Suite::SpecCpuInt => 8.0,
        Suite::Kernels => 4.0,
    }
}

/// Table III rows: `(area_mm2, power_w)` for the named structure.
pub fn table3(structure: &str) -> Option<(f64, f64)> {
    Some(match structure {
        "baseline.core" => (2.49, 0.85),
        "baseline.icache" => (0.31, 0.075),
        "baseline.bp" => (0.14, 0.032),
        "baseline.btb" => (0.125, 0.017),
        "tailored.core" => (2.11, 0.79),
        "tailored.icache" => (0.14, 0.049),
        "tailored.bp" => (0.04, 0.011),
        "tailored.btb" => (0.022, 0.002),
        _ => return None,
    })
}

/// Figure 10a: normalized execution time per suite for
/// (Tailored, Asymmetric, Asymmetric++) relative to Baseline = 1.0.
pub fn fig10_time(suite: Suite) -> (f64, f64, f64) {
    match suite {
        Suite::ExMatEx => (1.06, 1.01, 0.92),
        Suite::SpecOmp => (1.01, 1.00, 0.89),
        Suite::Npb => (1.01, 1.00, 0.88),
        Suite::SpecCpuInt => (1.08, 1.00, 1.00),
        Suite::Kernels => (1.03, 1.00, 0.93),
    }
}

/// Headline claims from the abstract.
pub mod headline {
    /// Tailored core area saving.
    pub const AREA_SAVING: f64 = 0.16;
    /// Tailored core power saving.
    pub const POWER_SAVING: f64 = 0.07;
    /// Asymmetric++ average execution-time reduction on HPC.
    pub const ASYM_PP_SPEEDUP: f64 = 0.12;
    /// Asymmetric++ power increase vs the baseline CMP.
    pub const ASYM_PP_POWER: f64 = 0.04;
    /// Asymmetric++ energy saving.
    pub const ASYM_PP_ENERGY: f64 = 0.08;
    /// Asymmetric++ ED-product reduction.
    pub const ASYM_PP_ED: f64 = 0.18;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suites_covered() {
        for s in Suite::ALL {
            assert!(branch_fraction(s) > 0.0);
            let (ser, par) = backward_taken(s);
            assert!(ser > 0.5 && par > 0.5);
            assert!(strongly_biased(s) > 0.0);
            assert!(static_kb(s) > 0.0);
            assert!(dyn99_kb(s) > 0.0);
            assert!(bbl_bytes(s) > 0.0);
            assert!(gshare_big_mpki(s) > 0.0);
            let (t, a, app) = fig10_time(s);
            assert!(t > 0.8 && a > 0.8 && app > 0.8);
        }
    }

    #[test]
    fn table3_rows() {
        assert_eq!(table3("baseline.core"), Some((2.49, 0.85)));
        assert_eq!(table3("tailored.btb"), Some((0.022, 0.002)));
        assert_eq!(table3("nonsense"), None);
    }

    #[test]
    fn desktop_is_branchier_and_less_biased() {
        assert!(branch_fraction(Suite::SpecCpuInt) > 2.0 * branch_fraction(Suite::Npb));
        assert!(strongly_biased(Suite::Npb) > strongly_biased(Suite::SpecCpuInt));
    }
}
