//! Figures 7–9: BTB and I-cache sensitivity studies.

use rebalance_frontend::{BtbConfig, BtbSim, CacheConfig, ICacheSim};
use rebalance_workloads::{Scale, Suite, Workload};
use serde::{Deserialize, Serialize};

use crate::util::{self, f2, mean, TextTable};

/// One Figure 7 row: per-suite BTB MPKI for one geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    /// BTB entries.
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
    /// Mean MPKI per suite in [`Suite::ALL`] order.
    pub mpki: [f64; Suite::COUNT],
}

/// Figure 7: BTB MPKI vs entries and associativity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// Rows for {256,512,1K} × {2,4,8}.
    pub rows: Vec<Fig7Row>,
}

impl Fig7 {
    /// Looks up one cell.
    pub fn mpki(&self, entries: usize, assoc: usize, suite: Suite) -> Option<f64> {
        let idx = Suite::ALL.iter().position(|s| *s == suite)?;
        self.rows
            .iter()
            .find(|r| r.entries == entries && r.assoc == assoc)
            .map(|r| r.mpki[idx])
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut header = vec!["BTB".to_owned()];
        header.extend(Suite::ALL.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![format!("{}-entry {}-way", r.entries, r.assoc)];
            cells.extend(r.mpki.iter().map(|m| f2(*m)));
            t.row(cells);
        }
        format!(
            "Figure 7: BTB MPKI vs size and associativity\n{}",
            t.render()
        )
    }
}

/// The Figure 7 geometries.
pub fn fig7_configs() -> Vec<BtbConfig> {
    let mut v = Vec::new();
    for entries in [256, 512, 1024] {
        for assoc in [2, 4, 8] {
            v.push(BtbConfig::new(entries, assoc));
        }
    }
    v
}

/// Runs Figure 7 (all geometries in one trace pass per workload).
pub fn fig7(scale: Scale) -> Fig7 {
    let configs = fig7_configs();
    let results: Vec<(Workload, Vec<f64>)> = util::sweep(util::roster(), scale, |_| {
        configs.iter().map(|c| BtbSim::new(*c)).collect()
    })
    .into_iter()
    .map(|o| {
        let mpki = o.tools.iter().map(|s| s.report().total().mpki()).collect();
        (o.item, mpki)
    })
    .collect();
    let rows = configs
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            let mut mpki = [0.0; Suite::COUNT];
            for (si, suite) in Suite::ALL.iter().enumerate() {
                mpki[si] = mean(
                    results
                        .iter()
                        .filter(|(w, _)| w.suite() == *suite)
                        .map(|(_, v)| v[ci]),
                );
            }
            Fig7Row {
                entries: c.entries,
                assoc: c.assoc,
                mpki,
            }
        })
        .collect();
    Fig7 { rows }
}

/// One Figure 8 row: per-suite I-cache MPKI for one geometry (64 B line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Cache size in KB.
    pub size_kb: usize,
    /// Associativity.
    pub assoc: usize,
    /// Mean MPKI per suite in [`Suite::ALL`] order.
    pub mpki: [f64; Suite::COUNT],
}

/// Figure 8: I-cache MPKI vs size and associativity at 64 B lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// Rows for {8,16,32 KB} × {2,4,8}.
    pub rows: Vec<Fig8Row>,
}

impl Fig8 {
    /// Looks up one cell.
    pub fn mpki(&self, size_kb: usize, assoc: usize, suite: Suite) -> Option<f64> {
        let idx = Suite::ALL.iter().position(|s| *s == suite)?;
        self.rows
            .iter()
            .find(|r| r.size_kb == size_kb && r.assoc == assoc)
            .map(|r| r.mpki[idx])
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut header = vec!["I-cache".to_owned()];
        header.extend(Suite::ALL.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![format!("{}KB {}-way", r.size_kb, r.assoc)];
            cells.extend(r.mpki.iter().map(|m| f2(*m)));
            t.row(cells);
        }
        format!(
            "Figure 8: I-cache MPKI vs size and associativity (64B lines)\n{}",
            t.render()
        )
    }
}

/// Runs Figure 8.
pub fn fig8(scale: Scale) -> Fig8 {
    let mut configs = Vec::new();
    for size_kb in [8, 16, 32] {
        for assoc in [2, 4, 8] {
            configs.push(CacheConfig::new(size_kb * 1024, 64, assoc));
        }
    }
    let results: Vec<(Workload, Vec<f64>)> = util::sweep(util::roster(), scale, |_| {
        configs.iter().map(|c| ICacheSim::new(*c)).collect()
    })
    .into_iter()
    .map(|o| {
        let mpki = o.tools.iter().map(|s| s.report().total().mpki()).collect();
        (o.item, mpki)
    })
    .collect();
    let rows = configs
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            let mut mpki = [0.0; Suite::COUNT];
            for (si, suite) in Suite::ALL.iter().enumerate() {
                mpki[si] = mean(
                    results
                        .iter()
                        .filter(|(w, _)| w.suite() == *suite)
                        .map(|(_, v)| v[ci]),
                );
            }
            Fig8Row {
                size_kb: c.size_bytes / 1024,
                assoc: c.assoc,
                mpki,
            }
        })
        .collect();
    Fig8 { rows }
}

/// The benchmarks Figure 9 highlights.
pub const FIG9_WORKLOADS: [&str; 5] = ["CoEVP", "CoGL", "fma3d", "xalancbmk", "omnetpp"];

/// One Figure 9 row: MPKI and usefulness for one line width on one
/// benchmark (16 KB cache).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Benchmark name.
    pub workload: String,
    /// Line width in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub assoc: usize,
    /// I-cache MPKI.
    pub mpki: f64,
    /// Mean line usefulness.
    pub usefulness: f64,
}

/// Figure 9: line-width sensitivity at 16 KB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    /// Rows per workload × line × assoc.
    pub rows: Vec<Fig9Row>,
}

impl Fig9 {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["workload", "line", "assoc", "MPKI", "usefulness"]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                format!("{}B", r.line_bytes),
                r.assoc.to_string(),
                f2(r.mpki),
                f2(r.usefulness),
            ]);
        }
        format!(
            "Figure 9: I-cache MPKI vs line width (16KB cache)\n{}",
            t.render()
        )
    }
}

/// Runs Figure 9 over the highlighted subset: all nine line/assoc
/// geometries share one replay per workload.
pub fn fig9(scale: Scale) -> Fig9 {
    let mut configs = Vec::new();
    for line in [32, 64, 128] {
        for assoc in [2, 4, 8] {
            configs.push(CacheConfig::new(16 * 1024, line, assoc));
        }
    }
    let subset = util::filtered(
        FIG9_WORKLOADS
            .iter()
            .map(|n| rebalance_workloads::find(n).expect("figure 9 roster name"))
            .collect(),
    );
    let rows = util::sweep(subset, scale, |_| {
        configs.iter().map(|c| ICacheSim::new(*c)).collect()
    })
    .into_iter()
    .flat_map(|o| {
        o.tools
            .iter()
            .map(|sim| {
                let rep = sim.report();
                Fig9Row {
                    workload: o.item.name().to_owned(),
                    line_bytes: rep.config.line_bytes,
                    assoc: rep.config.assoc,
                    mpki: rep.total().mpki(),
                    usefulness: rep.usefulness,
                }
            })
            .collect::<Vec<_>>()
    })
    .collect();
    Fig9 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shapes() {
        let f = fig7(Scale::Smoke);
        assert_eq!(f.rows.len(), 9);
        // HPC is insensitive to BTB size (paper Implication 2): 256 vs
        // 1K entries changes NPB MPKI very little.
        let npb_256 = f.mpki(256, 8, Suite::Npb).unwrap();
        let npb_1k = f.mpki(1024, 8, Suite::Npb).unwrap();
        assert!(
            npb_256 - npb_1k < 0.8,
            "NPB: 256-entry {npb_256} vs 1K {npb_1k}"
        );
        // Desktop is the BTB-hungriest suite.
        let int_256 = f.mpki(256, 8, Suite::SpecCpuInt).unwrap();
        assert!(int_256 > npb_256, "INT {int_256} vs NPB {npb_256}");
        assert!(f.render().contains("256-entry"));
    }

    #[test]
    fn fig8_shapes() {
        let f = fig8(Scale::Smoke);
        assert_eq!(f.rows.len(), 9);
        // Sizes matter for desktop: 8KB much worse than 32KB.
        // Smoke-scale traces keep a warmup component, flattening the
        // curve; full-scale runs show the paper's ~2.5x spread.
        let int8 = f.mpki(8, 4, Suite::SpecCpuInt).unwrap();
        let int32 = f.mpki(32, 4, Suite::SpecCpuInt).unwrap();
        assert!(int8 > 1.3 * int32, "INT 8KB {int8} vs 32KB {int32}");
        // SPEC OMP/NPB live happily in 8KB (MPKI ~ below 1).
        assert!(f.mpki(8, 4, Suite::Npb).unwrap() < 1.6);
        assert!(f.mpki(8, 4, Suite::SpecOmp).unwrap() < 1.8);
        // MPKI decreases (weakly) with size everywhere.
        for suite_idx in 0..4 {
            let at = |kb: usize| {
                f.rows
                    .iter()
                    .find(|r| r.size_kb == kb && r.assoc == 8)
                    .unwrap()
                    .mpki[suite_idx]
            };
            assert!(at(32) <= at(8) + 0.05, "suite {suite_idx}");
        }
    }

    #[test]
    fn fig9_usefulness_contrast() {
        let f = fig9(Scale::Smoke);
        assert_eq!(f.rows.len(), 5 * 9);
        // HPC keeps wide lines useful; desktop wastes them.
        let use_of = |w: &str| {
            f.rows
                .iter()
                .find(|r| r.workload == w && r.line_bytes == 128 && r.assoc == 8)
                .unwrap()
                .usefulness
        };
        assert!(
            use_of("CoGL") > use_of("xalancbmk") + 0.04,
            "CoGL {:.2} vs xalan {:.2}",
            use_of("CoGL"),
            use_of("xalancbmk")
        );
        assert!(f.render().contains("omnetpp"));
    }
}
