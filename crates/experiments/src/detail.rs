//! Per-benchmark detail rows backing the paper's named observations
//! (BT's 312 B blocks, UA's 252 KB static footprint, CoEVP's 35% serial
//! share, the indirect-branch outliers, ...).

use rebalance_workloads::{Scale, Suite};
use serde::{Deserialize, Serialize};

use crate::util::{characterize_workload, f1, for_all_workloads, pct, TextTable};

/// One benchmark's headline characterization numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetailRow {
    /// Benchmark name.
    pub workload: String,
    /// Suite.
    pub suite: Suite,
    /// Branch fraction of instructions.
    pub branch_fraction: f64,
    /// Indirect (branch+call) share of branches.
    pub indirect_share: f64,
    /// Strongly biased share of dynamic conditionals.
    pub strongly_biased: f64,
    /// Backward share of taken conditionals.
    pub backward: f64,
    /// Static footprint, KB.
    pub static_kb: f64,
    /// 99% dynamic footprint, KB.
    pub dyn99_kb: f64,
    /// Average basic-block bytes.
    pub bbl_bytes: f64,
    /// Serial share of instructions.
    pub serial_share: f64,
}

/// The per-benchmark detail table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Detail {
    /// One row per roster benchmark, in roster order.
    pub rows: Vec<DetailRow>,
}

impl Detail {
    /// Looks a row up by name.
    pub fn row(&self, workload: &str) -> Option<&DetailRow> {
        self.rows.iter().find(|r| r.workload == workload)
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "workload",
            "suite",
            "branch%",
            "indirect%",
            "biased",
            "backward",
            "static KB",
            "dyn99 KB",
            "BBL B",
            "serial%",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.suite.to_string(),
                f1(r.branch_fraction * 100.0),
                format!("{:.2}", r.indirect_share * 100.0),
                pct(r.strongly_biased),
                pct(r.backward),
                f1(r.static_kb),
                f1(r.dyn99_kb),
                f1(r.bbl_bytes),
                f1(r.serial_share * 100.0),
            ]);
        }
        format!(
            "Per-benchmark characterization detail (full roster)\n{}",
            t.render()
        )
    }
}

/// Characterizes every roster benchmark individually.
pub fn run(scale: Scale) -> Detail {
    let rows = for_all_workloads(|w| {
        let c = characterize_workload(w, scale);
        let mix = c.mix.total();
        let branches = mix.branches().max(1);
        use rebalance_isa::BranchKind;
        let indirect = mix.count(BranchKind::IndirectBranch) + mix.count(BranchKind::IndirectCall);
        DetailRow {
            workload: w.name().to_owned(),
            suite: w.suite(),
            branch_fraction: mix.branch_fraction(),
            indirect_share: indirect as f64 / branches as f64,
            strongly_biased: c.bias.total.strongly_biased_fraction(),
            backward: c.direction.total().backward_fraction(),
            static_kb: c.footprint.static_kb(),
            dyn99_kb: c.footprint.total.dyn99_kb(),
            bbl_bytes: c.basic_blocks.total().avg_block_bytes(),
            serial_share: w.profile().serial_fraction,
        }
    })
    .into_iter()
    .map(|(_, row)| row)
    .collect();
    Detail { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_paper_observations_hold_per_benchmark() {
        let d = run(Scale::Smoke);
        assert_eq!(d.rows.len(), rebalance_workloads::all().len());

        // BT has the longest basic blocks of the *study* (~312 B); our
        // synthetic streaming kernel may exceed it, so the named
        // observations range over the paper roster only.
        let paper_rows: Vec<&DetailRow> = d.rows.iter().filter(|r| r.suite.is_paper()).collect();
        let bt = d.row("BT").unwrap();
        let max_bbl = paper_rows
            .iter()
            .map(|r| r.bbl_bytes)
            .fold(0.0f64, f64::max);
        assert!(bt.bbl_bytes > 200.0, "BT {:.0}B", bt.bbl_bytes);
        assert!((max_bbl - bt.bbl_bytes).abs() < 1e-9, "BT is the max");

        // VPFFT carries the largest static footprint (libraries).
        let vpfft = d.row("VPFFT").unwrap();
        assert!(paper_rows
            .iter()
            .all(|r| r.static_kb <= vpfft.static_kb + 1.0));

        // CoEVP is the serial-share outlier and an indirect outlier.
        let coevp = d.row("CoEVP").unwrap();
        assert!(coevp.serial_share >= 0.35 - 1e-9);
        assert!(coevp.indirect_share > 0.015, "{}", coevp.indirect_share);

        // Desktop rows are uniformly less biased than NPB rows.
        let min_npb = d
            .rows
            .iter()
            .filter(|r| r.suite == Suite::Npb)
            .map(|r| r.strongly_biased)
            .fold(1.0f64, f64::min);
        let max_int = d
            .rows
            .iter()
            .filter(|r| r.suite == Suite::SpecCpuInt)
            .map(|r| r.strongly_biased)
            .fold(0.0f64, f64::max);
        assert!(
            min_npb > max_int,
            "every NPB row ({min_npb:.2}) more biased than every INT row ({max_int:.2})"
        );
    }

    #[test]
    fn render_contains_all_names() {
        let d = run(Scale::Smoke);
        let text = d.render();
        for w in rebalance_workloads::all() {
            assert!(text.contains(w.name()), "{} missing", w.name());
        }
    }
}
