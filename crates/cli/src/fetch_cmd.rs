//! `rebalance fetch` — sweep the decoupled front-end (FTQ + FDIP)
//! design grid, replays served from the trace cache.

use std::process::ExitCode;

use rebalance_experiments::fetchsim::{self, FetchSummary};
use rebalance_experiments::util::{self, f2, mean, TextTable};

use crate::args;

/// The flagship design-point pair the per-workload table contrasts:
/// deep FTQ, 4-wide, FDIP on, large vs small BTB.
const BIG_BTB: &str = "ftq16/w4/pf4/btb2048";
const SMALL_BTB: &str = "ftq16/w4/pf4/btb256";

/// Runs the grid sweep and prints mean bandwidth/stall tables, the
/// per-workload small-BTB retention table, and the shared replay/cache
/// report. `--json DIR` additionally dumps the raw sweep and report.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[
        (parsed.force, "--force"),
        (
            parsed.model.is_some(),
            "--model (fetch always runs the FTQ model)",
        ),
    ])?;
    let workloads = args::resolve_workloads(&parsed.positional, parsed.all, parsed.suite)?;
    args::configure_cache_env(&parsed);
    args::configure_replay(&parsed)?;
    args::configure_sampling(&parsed);
    args::configure_metrics(&parsed);

    let grid = fetchsim::default_grid();
    let (sweep, report) = {
        let _fetch_span = rebalance_telemetry::span("fetch");
        match parsed.workers {
            Some(workers) => {
                // Workers return their shards' rows; the grid (and thus the
                // config labels) is deterministic, so rebuilding the sweep
                // here reproduces `sweep_grid`'s output exactly.
                let (rows, report) = crate::shard::fetch_sharded(&parsed, &workloads, workers)?;
                let configs = grid.iter().map(|c| c.label()).collect();
                (fetchsim::FetchsimSweep { configs, rows }, report)
            }
            None => (
                fetchsim::sweep_grid(workloads, parsed.scale, &grid),
                util::sweep_report(),
            ),
        }
    };

    // Per design point: selection-mean bandwidth and stall breakdown.
    let mut designs = TextTable::new(vec![
        "config",
        "bandwidth",
        "mispredict",
        "resteer",
        "icache",
        "ftq-empty",
    ]);
    for (ci, config) in sweep.configs.iter().enumerate() {
        let col =
            |f: fn(&FetchSummary) -> f64| mean(sweep.rows.iter().map(|r| f(&r.summaries[ci])));
        designs.row(vec![
            config.clone(),
            f2(col(|s| s.bandwidth)),
            f2(col(|s| s.mispredict_cpk)),
            f2(col(|s| s.resteer_cpk)),
            f2(col(|s| s.icache_cpk)),
            f2(col(|s| s.ftq_empty_cpk)),
        ]);
    }

    // Per workload: what shrinking the BTB 8x costs under FDIP.
    let mut retention = TextTable::new(vec![
        "workload",
        "suite",
        "bw btb2048",
        "bw btb256",
        "retention",
        "serial bw",
        "parallel bw",
    ]);
    for row in &sweep.rows {
        let cell = |config: &str| sweep.summary(&row.workload, config).expect("grid config");
        let (big, small) = (cell(BIG_BTB), cell(SMALL_BTB));
        let ratio = if big.bandwidth > 0.0 {
            small.bandwidth / big.bandwidth
        } else {
            0.0
        };
        retention.row(vec![
            row.workload.clone(),
            row.suite.to_string(),
            f2(big.bandwidth),
            f2(small.bandwidth),
            f2(ratio),
            f2(small.serial_bandwidth),
            f2(small.parallel_bandwidth),
        ]);
    }

    if let Some(dir) = &parsed.json_dir {
        crate::write_json(dir, "fetch", &sweep)?;
        crate::write_json(dir, "report", &report)?;
    }

    crate::print_ignoring_pipe(&format!(
        "fetch timing: design-grid means over the selection (insts/cycle; stall cycles per kilo-inst)\n{}\n\
         fetch timing: small-BTB bandwidth retention per workload ({SMALL_BTB} vs {BIG_BTB})\n{}{report}\n",
        designs.render(),
        retention.render(),
    ));
    crate::metrics::emit(&parsed)?;
    Ok(ExitCode::SUCCESS)
}
