//! `rebalance` — the workspace's command-line front door.
//!
//! ```text
//! rebalance trace record CG FT --scale quick      # snapshot traces into the cache
//! rebalance trace info  <file.rbts>...            # header/footer of snapshot files
//! rebalance trace verify <file.rbts>...           # full checksum + structure check
//! rebalance sweep --scale quick                   # predictor sweep, cache-served
//! rebalance sweep --suite kernels                 # kernel-archetype sweep
//! rebalance sweep --model ftq --json out/         # + FTQ-model CPI, JSON dumps
//! rebalance fetch --suite npb                     # decoupled front-end design grid
//! rebalance workloads list --suite kernels        # roster with design knobs
//! rebalance phases --suite kernels                # phase-cluster maps + weights
//! rebalance sweep --sample 160 --sample-k 8       # phase-sampled predictor sweep
//! rebalance paper fig5 table3 --scale quick       # regenerate paper exhibits
//! rebalance paper fig5 --suite npb --model ftq    # one suite, FTQ timing backend
//! ```
//!
//! All replay-heavy subcommands route through the on-disk trace cache
//! (default `target/trace-cache`, override with `--cache DIR`, disable
//! with `--no-cache`) and finish by printing the shared sweep/cache
//! [`Report`](rebalance_trace::Report).

use std::process::ExitCode;

mod args;
mod bench_cmd;
mod fetch_cmd;
mod metrics;
mod paper_cmd;
mod phases_cmd;
mod shard;
mod sweep_cmd;
mod trace_cmd;
mod workloads_cmd;

/// Cache directory used when `--cache` is not given.
const DEFAULT_CACHE_DIR: &str = "target/trace-cache";

/// Best-effort stdout write: a closed pipe (`rebalance ... | head`) is
/// a normal way to stop reading, not a failure worth panicking over
/// (which is what `println!` would do on EPIPE).
fn print_ignoring_pipe(text: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// Writes `value` as pretty-printed JSON to `dir/name.json`, creating
/// the directory if needed (the `--json DIR` machine-readable outputs).
fn write_json<T: serde::Serialize>(dir: &str, name: &str, value: &T) -> Result<(), String> {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{name}.json"));
    let json =
        serde_json::to_string_pretty(value).map_err(|e| format!("cannot serialize {name}: {e}"))?;
    std::fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rebalance <COMMAND> [OPTIONS]\n\
         \n\
         commands:\n\
         \x20 trace record [WORKLOAD...] [--all] [--scale S] [--cache DIR] [--force] [--batch-size N]\n\
         \x20     synthesize workloads once and store their snapshots in the cache\n\
         \x20 trace info <FILE...> [--json DIR]\n\
         \x20     print header/footer metadata of snapshot files (--json writes trace_info.json)\n\
         \x20 trace verify <FILE...> [--batch-size N]\n\
         \x20     fully validate snapshot files (framing, checksum, structure)\n\
         \x20 sweep [--workloads A,B,...] [--suite S] [--scale S] [--json DIR] [--model M] [--cache DIR] [--no-cache] [--batch-size N] [--workers N]\n\
         \x20     run the nine-predictor sweep, replays served from the cache\n\
         \x20 fetch [--workloads A,B,...] [--suite S] [--scale S] [--json DIR] [--cache DIR] [--no-cache] [--batch-size N] [--workers N]\n\
         \x20     sweep the decoupled front-end (FTQ + FDIP) design grid, one replay per workload\n\
         \x20 workloads list [--suite S]\n\
         \x20     list the registered roster (paper suites + kernel archetypes)\n\
         \x20 phases [--workloads A,B,...] [--suite S] [--scale S] [--sample N] [--sample-k K] [--json DIR] [--cache DIR] [--no-cache] [--batch-size N]\n\
         \x20     print each workload's phase-cluster map and per-cluster weights\n\
         \x20 paper [EXHIBIT...|all] [--suite S] [--scale S] [--model M] [--json DIR] [--cache DIR] [--no-cache] [--batch-size N] [--workers N]\n\
         \x20     regenerate the paper's figures/tables (see `repro`) through the cache\n\
         \x20 bench [--workloads A,B,...] [--suite S] [--scale S] [--json DIR] [--cache DIR] [--no-cache] [--batch-size N]\n\
         \x20     measure replay throughput per compute backend, write BENCH_replay.json with --json\n\
         \n\
         scales: smoke | quick | full | <positive factor>   (default: smoke)\n\
         suites: exmatex | specomp | npb | specint | kernels\n\
         --model M: CPI timing backend, penalty (closed form) or ftq (decoupled fetch simulator)\n\
         --sample N [--sample-k K]: phase-sample sweep/fetch/paper replays into N intervals,\n\
         \x20    K clusters, replaying one weighted representative per cluster (default 160/8)\n\
         --batch-size N: events per delivery block (default 4096; env REBALANCE_BATCH)\n\
         --backend B: replay compute backend, auto | scalar | wide (default auto; env REBALANCE_BACKEND)\n\
         --workers N: shard sweep/fetch/paper across N worker subprocesses sharing the trace cache\n\
         --metrics [text|json[=PATH]]: emit the telemetry snapshot after the report (sweep/fetch/paper/bench;\n\
         \x20    text prints the span tree + top counters, json writes metrics.json; env REBALANCE_METRICS=1\n\
         \x20    turns collection on without emitting)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        return usage();
    };
    let result = match command.as_str() {
        "trace" => match rest.split_first() {
            Some((sub, rest)) => match sub.as_str() {
                "record" => trace_cmd::record(rest),
                "info" => trace_cmd::info(rest),
                "verify" => trace_cmd::verify(rest),
                _ => return usage(),
            },
            None => return usage(),
        },
        "sweep" => sweep_cmd::run(rest),
        "bench" => bench_cmd::run(rest),
        "fetch" => fetch_cmd::run(rest),
        "paper" => paper_cmd::run(rest),
        "phases" => phases_cmd::run(rest),
        "workloads" => match rest.split_first() {
            Some((sub, rest)) if sub == "list" => workloads_cmd::list(rest),
            _ => return usage(),
        },
        // Internal: one shard of a `--workers N` run (request on stdin).
        "__worker" => shard::worker(rest),
        "--help" | "-h" | "help" => return usage(),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("rebalance: {message}");
            ExitCode::FAILURE
        }
    }
}
