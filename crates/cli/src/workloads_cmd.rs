//! `rebalance workloads list` — the registered roster, with per-suite
//! filtering and the kernel archetypes' design knobs.

use std::process::ExitCode;

use rebalance_experiments::util::TextTable;
use rebalance_workloads::KernelSpec;

use crate::args;

/// Lists the roster: name, suite, serial fraction, branch-fraction
/// target, hot/static footprints, instruction budget, phase shape —
/// and, for kernel workloads, the archetype.
pub fn list(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[
        (parsed.no_cache, "--no-cache"),
        (parsed.cache_dir.is_some(), "--cache"),
        (parsed.json_dir.is_some(), "--json"),
        (parsed.force, "--force"),
        (parsed.batch_size.is_some(), "--batch-size"),
        (parsed.model.is_some(), "--model"),
        (parsed.workers.is_some(), "--workers"),
    ])?;
    args::forbid(&args::sampling_flags(&parsed))?;
    args::forbid(&args::metrics_flag(&parsed))?;
    let workloads = args::resolve_workloads(&parsed.positional, parsed.all, parsed.suite)?;

    let mut t = TextTable::new(vec![
        "workload",
        "suite",
        "serial%",
        "bf%",
        "hot KB",
        "static KB",
        "insts",
        "phases",
        "archetype",
    ]);
    for w in &workloads {
        let p = w.profile();
        let kernel_section = if p.serial_fraction >= 1.0 {
            &p.serial
        } else {
            &p.parallel
        };
        let shape = if p.phases.is_legacy() {
            "legacy".to_owned()
        } else {
            format!(
                "{}ep r{} d{}",
                p.phases.epochs, p.phases.ramp, p.phases.drift_windows
            )
        };
        let archetype = KernelSpec::find(w.name())
            .map(|s| format!("{:?}: {}", s.archetype, s.archetype.description()))
            .unwrap_or_default();
        t.row(vec![
            w.name().to_owned(),
            w.suite().to_string(),
            format!("{:.1}", p.serial_fraction * 100.0),
            format!("{:.1}", kernel_section.branch_fraction * 100.0),
            format!("{:.1}", kernel_section.hot_kb),
            format!("{:.0}", p.static_kb),
            p.instructions.to_string(),
            shape,
            archetype,
        ]);
    }
    crate::print_ignoring_pipe(&format!("{} workload(s)\n{}", workloads.len(), t.render()));
    Ok(ExitCode::SUCCESS)
}
