//! `rebalance trace record|info|verify` — snapshot management.

use std::path::Path;
use std::process::ExitCode;

use rebalance_experiments::util::TextTable;
use rebalance_trace::{select_backend, snapshot, SnapshotInfo, TraceCache};
use serde::Serialize;

use crate::args;

/// `trace info`/`trace verify` operate on explicit snapshot files, so
/// every workload/cache/scale option is inapplicable (`trace info`
/// accepts `--json` for its machine-readable dump and checks it
/// separately).
fn forbid_file_subcommand_flags(parsed: &args::Parsed) -> Result<(), String> {
    args::forbid(&[
        (parsed.no_cache, "--no-cache"),
        (parsed.cache_dir.is_some(), "--cache"),
        (parsed.all, "--all"),
        (parsed.force, "--force"),
        (parsed.suite.is_some(), "--suite"),
        (parsed.model.is_some(), "--model"),
        (parsed.workers.is_some(), "--workers"),
    ])?;
    args::forbid(&args::sampling_flags(parsed))?;
    args::forbid(&args::metrics_flag(parsed))
}

/// Per-file info rows plus the aggregate `bytes_per_event` across all
/// listed snapshots.
fn render_info_footer(infos: &[SnapshotInfo]) -> String {
    let events: u64 = infos.iter().map(|i| i.summary.instructions).sum();
    let branches: u64 = infos.iter().map(|i| i.summary.branches).sum();
    let bytes: u64 = infos.iter().map(|i| i.total_bytes).sum();
    let per_event = if events == 0 {
        0.0
    } else {
        bytes as f64 / events as f64
    };
    let branch_pct = if events == 0 {
        0.0
    } else {
        100.0 * branches as f64 / events as f64
    };
    format!(
        "total: {} snapshot(s), {events} events, {bytes} bytes, {per_event:.2} bytes/event\n\
         lanes: {branch_pct:.1}% branch fill, auto backend at replay: {}\n",
        infos.len(),
        select_backend(events)
    )
}

fn info_row(table: &mut TextTable, label: &str, info: &SnapshotInfo) {
    table.row(vec![
        label.to_owned(),
        info.summary.instructions.to_string(),
        info.summary.branches.to_string(),
        info.sections.serial.to_string(),
        info.sections.parallel.to_string(),
        info.total_bytes.to_string(),
        format!("{:.2}", info.bytes_per_event()),
        // Which compute backend an auto-selected replay of this
        // snapshot would use (size-based; env/CLI overrides still win).
        select_backend(info.summary.instructions).to_string(),
        format!("{:016x}", info.fingerprint),
    ]);
}

fn info_table() -> TextTable {
    TextTable::new(vec![
        "snapshot",
        "instructions",
        "branches",
        "serial",
        "parallel",
        "bytes",
        "B/event",
        "backend",
        "fingerprint",
    ])
}

/// `rebalance trace record`: synthesize each workload once and store
/// its snapshot in the cache (skipping fresh entries unless `--force`).
pub fn record(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[
        (
            parsed.no_cache,
            "--no-cache (record always writes the cache)",
        ),
        (parsed.json_dir.is_some(), "--json"),
        (parsed.model.is_some(), "--model"),
        (parsed.workers.is_some(), "--workers"),
    ])?;
    args::forbid(&args::sampling_flags(&parsed))?;
    args::forbid(&args::metrics_flag(&parsed))?;
    args::configure_replay(&parsed)?;
    let workloads = args::resolve_workloads(&parsed.positional, parsed.all, parsed.suite)?;
    let cache = TraceCache::new(args::cache_dir(&parsed)).map_err(|e| e.to_string())?;
    let scale = parsed.scale;

    let mut table = info_table();
    let mut recorded = 0usize;
    let mut skipped = 0usize;
    for w in &workloads {
        let key = w.trace_key(scale);
        if !parsed.force && cache.contains(&key) {
            if let Ok(info) = snapshot::read_info(&cache.path_for(&key)) {
                info_row(&mut table, &format!("{} (cached)", w.name()), &info);
                skipped += 1;
                continue;
            }
            // Unreadable existing snapshot: fall through and rewrite.
        }
        let trace = w.trace(scale)?;
        let info = cache.record(&key, &trace).map_err(|e| e.to_string())?;
        info_row(&mut table, w.name(), &info);
        recorded += 1;
    }
    print!("{}", table.render());
    println!(
        "recorded {recorded} snapshot(s), reused {skipped}, at scale {scale} in {}",
        cache.dir().display()
    );
    // Full cache accounting, write failures included — a record run
    // that silently failed to persist must be visible here.
    println!("cache: {}", cache.stats());
    Ok(ExitCode::SUCCESS)
}

/// Machine-readable mirror of `trace info` (`--json DIR` writes it as
/// `trace_info.json`): per-snapshot rows plus the aggregate footer.
#[derive(Debug, Serialize)]
struct TraceInfoJson {
    snapshots: Vec<TraceInfoRow>,
    total: TraceInfoTotals,
}

/// One snapshot file's metadata.
#[derive(Debug, Serialize)]
struct TraceInfoRow {
    file: String,
    instructions: u64,
    branches: u64,
    serial: u64,
    parallel: u64,
    bytes: u64,
    bytes_per_event: f64,
    /// Compute backend an auto-selected replay of this snapshot would
    /// use (size-based; env/CLI overrides still win).
    backend: String,
    /// Content fingerprint, in the same hex spelling the table prints.
    fingerprint: String,
}

/// The aggregate footer over every listed snapshot.
#[derive(Debug, Serialize)]
struct TraceInfoTotals {
    snapshots: usize,
    events: u64,
    branches: u64,
    bytes: u64,
    bytes_per_event: f64,
    branch_fill_pct: f64,
    auto_backend: String,
}

fn trace_info_json(files: &[String], infos: &[SnapshotInfo]) -> TraceInfoJson {
    let events: u64 = infos.iter().map(|i| i.summary.instructions).sum();
    let branches: u64 = infos.iter().map(|i| i.summary.branches).sum();
    let bytes: u64 = infos.iter().map(|i| i.total_bytes).sum();
    TraceInfoJson {
        snapshots: files
            .iter()
            .zip(infos)
            .map(|(file, info)| TraceInfoRow {
                file: file.clone(),
                instructions: info.summary.instructions,
                branches: info.summary.branches,
                serial: info.sections.serial,
                parallel: info.sections.parallel,
                bytes: info.total_bytes,
                bytes_per_event: info.bytes_per_event(),
                backend: select_backend(info.summary.instructions).to_string(),
                fingerprint: format!("{:016x}", info.fingerprint),
            })
            .collect(),
        total: TraceInfoTotals {
            snapshots: infos.len(),
            events,
            branches,
            bytes,
            bytes_per_event: if events == 0 {
                0.0
            } else {
                bytes as f64 / events as f64
            },
            branch_fill_pct: if events == 0 {
                0.0
            } else {
                100.0 * branches as f64 / events as f64
            },
            auto_backend: select_backend(events).to_string(),
        },
    }
}

/// `rebalance trace info`: print header/footer metadata per file;
/// `--json DIR` additionally writes the same rows as
/// `trace_info.json`.
pub fn info(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    forbid_file_subcommand_flags(&parsed)?;
    // Info never decodes the record stream, so a batch size is inert.
    args::forbid(&[(parsed.batch_size.is_some(), "--batch-size")])?;
    if parsed.positional.is_empty() {
        return Err("trace info needs at least one snapshot file".into());
    }
    let mut table = info_table();
    let mut infos = Vec::new();
    for file in &parsed.positional {
        let info = snapshot::read_info(Path::new(file)).map_err(|e| format!("{file}: {e}"))?;
        info_row(&mut table, file, &info);
        infos.push(info);
    }
    if let Some(dir) = &parsed.json_dir {
        let json = trace_info_json(&parsed.positional, &infos);
        crate::write_json(dir, "trace_info", &json)?;
    }
    print!("{}", table.render());
    print!("{}", render_info_footer(&infos));
    Ok(ExitCode::SUCCESS)
}

/// `rebalance trace verify`: full validation per file; nonzero exit if
/// any file fails.
pub fn verify(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    forbid_file_subcommand_flags(&parsed)?;
    // Verification prints pass/fail per file; there is no dump for it.
    args::forbid(&[(parsed.json_dir.is_some(), "--json")])?;
    // Verification decodes through the batched path; `--batch-size`
    // picks the block size it validates with.
    args::configure_replay(&parsed)?;
    if parsed.positional.is_empty() {
        return Err("trace verify needs at least one snapshot file".into());
    }
    let mut failures = 0usize;
    for file in &parsed.positional {
        match snapshot::verify_file(Path::new(file)) {
            Ok(info) => println!(
                "{file}: OK ({} events, {} bytes)",
                info.summary.instructions, info.total_bytes
            ),
            Err(e) => {
                println!("{file}: FAILED ({e})");
                failures += 1;
            }
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
