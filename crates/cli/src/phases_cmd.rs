//! `rebalance phases` — print each workload's phase-cluster map: the
//! interval geometry, every cluster's representative and weight, and a
//! per-interval assignment strip.

use std::process::ExitCode;

use rebalance_experiments::util::{self, TextTable};
use rebalance_pintools::BbvTool;
use rebalance_trace::{SamplePlan, SamplingConfig};
use rebalance_workloads::Suite;
use serde::Serialize;

use crate::args;

/// Machine-readable mirror of the printed cluster map (`--json DIR`
/// writes it as `phases.json`).
#[derive(Debug, Serialize)]
struct PhasesJson {
    scale: String,
    config: SamplingConfig,
    workloads: Vec<PhasesJsonWorkload>,
}

/// One workload's sampling plan.
#[derive(Debug, Serialize)]
struct PhasesJsonWorkload {
    workload: String,
    suite: Suite,
    intervals: usize,
    interval_insts: u64,
    replayed_fraction: f64,
    clusters: Vec<PhasesJsonCluster>,
    /// Interval → cluster id, in interval order.
    assignments: Vec<u32>,
}

/// One cluster of the plan.
#[derive(Debug, Serialize)]
struct PhasesJsonCluster {
    id: usize,
    representative: usize,
    weight: u64,
}

/// Renders the per-interval assignment strip, wrapped to `width`
/// clusters per line: each interval is one base-36 digit (`*` beyond
/// that) so the phase structure reads left to right.
fn assignment_strip(plan: &SamplePlan, width: usize) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = String::new();
    for chunk in plan.assignments().chunks(width) {
        out.push_str("    ");
        for &a in chunk {
            out.push(*DIGITS.get(a as usize).unwrap_or(&b'*') as char);
        }
        out.push('\n');
    }
    out
}

/// Runs the fingerprint + clustering pass for the selection and prints
/// the plan per workload (no timing tools replay: the plan itself is
/// the output).
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[
        (parsed.force, "--force"),
        (parsed.model.is_some(), "--model"),
        (parsed.workers.is_some(), "--workers"),
    ])?;
    args::forbid(&args::metrics_flag(&parsed))?;
    let workloads = args::resolve_workloads(&parsed.positional, parsed.all, parsed.suite)?;
    args::configure_cache_env(&parsed);
    args::configure_replay(&parsed)?;
    let config = args::sampling_config(&parsed).unwrap_or_default();

    let outcomes = util::sweep_sampled(&config, workloads, parsed.scale, |_| Vec::<BbvTool>::new());

    let mut text = String::new();
    let mut json = PhasesJson {
        scale: parsed.scale.to_string(),
        config,
        workloads: Vec::new(),
    };
    for o in &outcomes {
        let plan = &o.plan;
        text.push_str(&format!(
            "{} ({}): {} intervals x {} insts, {} clusters, replays {:.1}% (warmup {} insts/rep)\n",
            o.item.name(),
            o.item.suite(),
            plan.num_intervals(),
            plan.interval_insts(),
            plan.clusters().len(),
            plan.replayed_fraction() * 100.0,
            plan.warmup_insts(),
        ));
        let mut t = TextTable::new(vec!["cluster", "representative", "weight", "share"]);
        for (id, c) in plan.clusters().iter().enumerate() {
            t.row(vec![
                id.to_string(),
                format!(
                    "interval {} @ inst {}",
                    c.representative,
                    c.representative as u64 * plan.interval_insts()
                ),
                c.weight.to_string(),
                format!(
                    "{:.1}%",
                    c.weight as f64 / plan.num_intervals() as f64 * 100.0
                ),
            ]);
        }
        text.push_str(&t.render());
        text.push_str("  interval -> cluster:\n");
        text.push_str(&assignment_strip(plan, 80));
        text.push('\n');

        json.workloads.push(PhasesJsonWorkload {
            workload: o.item.name().to_owned(),
            suite: o.item.suite(),
            intervals: plan.num_intervals(),
            interval_insts: plan.interval_insts(),
            replayed_fraction: plan.replayed_fraction(),
            clusters: plan
                .clusters()
                .iter()
                .enumerate()
                .map(|(id, c)| PhasesJsonCluster {
                    id,
                    representative: c.representative,
                    weight: c.weight,
                })
                .collect(),
            assignments: plan.assignments().to_vec(),
        });
    }

    if let Some(dir) = &parsed.json_dir {
        crate::write_json(dir, "phases", &json)?;
        crate::write_json(dir, "report", &util::sweep_report())?;
    }
    text.push_str(&util::sweep_report().to_string());
    text.push('\n');
    crate::print_ignoring_pipe(&text);
    Ok(ExitCode::SUCCESS)
}
