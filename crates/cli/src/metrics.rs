//! Shared `--metrics` emission: after a subcommand prints its report,
//! this renders or writes the process-wide telemetry snapshot
//! (including anything absorbed from `__worker` shards).

use rebalance_telemetry as telemetry;

use crate::args::{MetricsMode, Parsed};

/// Emits the telemetry snapshot according to `--metrics`: `text`
/// prints the span tree and top counters to stdout, `json` writes a
/// versioned `metrics.json` (into the `--json` directory when one was
/// given, the working directory otherwise, or an explicit
/// `json=PATH`). A no-op without the flag — the `REBALANCE_METRICS`
/// env latch alone collects but does not emit, so worker subprocesses
/// and scripted runs stay quiet.
///
/// # Errors
///
/// The JSON file could not be created or written.
pub fn emit(parsed: &Parsed) -> Result<(), String> {
    let Some(mode) = &parsed.metrics else {
        return Ok(());
    };
    let snap = telemetry::snapshot();
    match mode {
        MetricsMode::Text => {
            crate::print_ignoring_pipe(&format!("{}\n", snap.render_text()));
        }
        MetricsMode::Json(path) => {
            let path = match path {
                Some(p) => std::path::PathBuf::from(p),
                None => match &parsed.json_dir {
                    Some(dir) => std::path::Path::new(dir).join("metrics.json"),
                    None => std::path::PathBuf::from("metrics.json"),
                },
            };
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
                }
            }
            std::fs::write(&path, snap.to_json())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            crate::print_ignoring_pipe(&format!("metrics written to {}\n", path.display()));
        }
    }
    Ok(())
}
