//! Sharded multi-worker sweeps: a coordinator that splits a selection
//! across worker subprocesses and merges their typed results.
//!
//! Protocol: for each shard the coordinator spawns `rebalance
//! __worker`, writes one JSON request on the worker's stdin, and reads
//! one JSON response from its stdout (stderr passes through for
//! diagnostics). Workers replay their shard against the shared on-disk
//! trace cache — safe under concurrent writers thanks to the cache's
//! single-flight generation and atomic tmp→rename commits — and return
//! plain data rows plus a per-shard [`Report`] delta scoped by
//! [`util::report_baseline`].
//!
//! Merge rules: shards are *contiguous* slices of the selection, so
//! concatenating shard rows in shard order reproduces selection order;
//! reports fold with [`Report::merged`] (counters add, backends must
//! agree). The coordinator then renders through the same code path as
//! a single-process run, making the merged output bit-identical.

use std::io::Write as _;
use std::process::{Child, Command, Stdio};

use rebalance_experiments::fetchsim::{FetchSummary, FetchsimRow};
use rebalance_experiments::{driver, util};
use rebalance_telemetry::{self as telemetry, HistogramSnapshot, MetricsSnapshot, SpanNode};
use rebalance_trace::{CacheStats, ComputeBackend, LaneFill, Report};
use rebalance_workloads::{Scale, Suite, Workload};
use serde::{Serialize, Value};

use crate::args::{self, Parsed};
use crate::sweep_cmd::{CpiJsonRow, SweepJsonRow, SweepRows};

/// One worker's marching orders: which task to run over which shard,
/// plus every process-wide knob the equivalent single-process command
/// would have latched before its first replay.
#[derive(Debug, Serialize)]
struct WorkerRequest {
    /// `sweep`, `fetch`, or `paper`.
    task: String,
    /// Scale in `parse_scale` spelling (custom scales as bare factors).
    scale: String,
    /// Workload names (sweep/fetch) or exhibit names (paper), in
    /// selection order.
    items: Vec<String>,
    /// Cache directory; `None` runs uncached (`--no-cache`).
    cache: Option<String>,
    batch_size: Option<u64>,
    backend: Option<String>,
    model: Option<String>,
    sample: Option<u64>,
    sample_k: Option<u64>,
    /// Suite filter (paper only — sweep/fetch shards pre-resolved
    /// workloads instead).
    suite: Option<String>,
    /// JSON dump directory (paper only: exhibits write their own
    /// dumps; sweep/fetch dumps are written by the coordinator).
    json_dir: Option<String>,
    /// `true` when the coordinator collects telemetry: the worker
    /// enables its own collection and ships a metrics snapshot in the
    /// response.
    metrics: bool,
}

impl WorkerRequest {
    fn new(parsed: &Parsed, task: &str, items: Vec<String>) -> WorkerRequest {
        WorkerRequest {
            task: task.to_owned(),
            scale: scale_arg(parsed.scale),
            items,
            cache: (!parsed.no_cache).then(|| args::cache_dir(parsed)),
            batch_size: parsed.batch_size.map(|n| n as u64),
            backend: parsed.backend.map(|b| b.to_string()),
            model: parsed.model.map(|m| m.to_string()),
            sample: parsed.sample.map(|n| n as u64),
            sample_k: parsed.sample_k.map(|n| n as u64),
            suite: None,
            json_dir: None,
            metrics: telemetry::enabled(),
        }
    }
}

/// `Scale` in the spelling `driver::parse_scale` accepts: the label for
/// the named scales, the bare factor for custom ones (whose `Display`
/// form `custom(x)` does not re-parse).
fn scale_arg(scale: Scale) -> String {
    let s = scale.to_string();
    s.strip_prefix("custom(")
        .and_then(|rest| rest.strip_suffix(')'))
        .map(str::to_owned)
        .unwrap_or(s)
}

/// Splits `items` into at most `workers` contiguous shards whose sizes
/// differ by at most one; empty shards are dropped rather than spawned.
fn shards<T: Clone>(items: &[T], workers: usize) -> Vec<Vec<T>> {
    let n = workers.clamp(1, items.len().max(1));
    let base = items.len() / n;
    let extra = items.len() % n;
    let mut out = Vec::new();
    let mut start = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        if len > 0 {
            out.push(items[start..start + len].to_vec());
        }
        start += len;
    }
    out
}

/// Spawns one worker per request and collects their parsed responses,
/// in request order.
fn run_workers(requests: &[WorkerRequest]) -> Result<Vec<Value>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut children: Vec<Child> = Vec::new();
    {
        let _spawn_span = telemetry::span("shard.spawn");
        for request in requests {
            let json = serde_json::to_string(request).map_err(|e| e.to_string())?;
            let mut child = Command::new(&exe)
                .arg("__worker")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|e| format!("cannot spawn worker: {e}"))?;
            child
                .stdin
                .take()
                .expect("stdin was piped")
                .write_all(json.as_bytes())
                .map_err(|e| format!("cannot send worker request: {e}"))?;
            children.push(child);
        }
    }
    let _gather_span = telemetry::span("shard.gather");
    children
        .into_iter()
        .enumerate()
        .map(|(i, child)| {
            let output = child
                .wait_with_output()
                .map_err(|e| format!("worker {i}: {e}"))?;
            if !output.status.success() {
                return Err(format!("worker {i} failed ({})", output.status));
            }
            let text = String::from_utf8(output.stdout)
                .map_err(|_| format!("worker {i}: response is not UTF-8"))?;
            serde_json::from_str(&text).map_err(|e| format!("worker {i}: malformed response: {e}"))
        })
        .collect()
}

/// Decodes the optional metrics snapshot a worker attached to its
/// response and folds it into this process's absorbed telemetry — the
/// same associative merge [`Report::merged`] applies to cache stats,
/// so coordinator metrics stay bit-stable against a single-process
/// run for every machine-independent metric.
fn absorb_worker_metrics(response: &Value) -> Result<(), String> {
    let Some(text) = response.get("metrics").and_then(Value::as_str) else {
        return Ok(());
    };
    let value: Value = serde_json::from_str(text)
        .map_err(|e| format!("worker metrics snapshot is malformed: {e}"))?;
    telemetry::absorb(&decode_metrics(&value)?);
    Ok(())
}

/// Folds per-shard report deltas into the selection-wide report.
fn merge_reports(reports: impl IntoIterator<Item = Report>) -> Report {
    reports
        .into_iter()
        .fold(Report::default(), |acc, r| acc.merged(&r))
}

// ---------------------------------------------------------------------------
// Coordinators (one per sharded subcommand)
// ---------------------------------------------------------------------------

/// Runs the predictor sweep (and optional CPI addendum) sharded across
/// `workers` subprocesses; returns the merged rows and report.
pub fn sweep_sharded(
    parsed: &Parsed,
    workloads: &[Workload],
    workers: usize,
) -> Result<(SweepRows, Report), String> {
    let requests: Vec<WorkerRequest> = shards(workloads, workers)
        .into_iter()
        .map(|shard| {
            WorkerRequest::new(
                parsed,
                "sweep",
                shard.iter().map(|w| w.name().to_owned()).collect(),
            )
        })
        .collect();
    let responses = run_workers(&requests)?;
    let _merge_span = telemetry::span("shard.merge");
    let mut rows = Vec::new();
    let mut cpi: Option<Vec<CpiJsonRow>> = None;
    let mut reports = Vec::new();
    for response in responses {
        rows.extend(decode_sweep_rows(seq(&response, "rows")?)?);
        match field(&response, "cpi")? {
            Value::Null => {}
            v => cpi
                .get_or_insert_with(Vec::new)
                .extend(decode_cpi_rows(as_seq(v, "cpi")?)?),
        }
        reports.push(decode_report(field(&response, "report")?)?);
        absorb_worker_metrics(&response)?;
    }
    Ok((SweepRows { rows, cpi }, merge_reports(reports)))
}

/// Runs the fetch design-grid sweep sharded across `workers`
/// subprocesses; returns the merged grid rows and report.
pub fn fetch_sharded(
    parsed: &Parsed,
    workloads: &[Workload],
    workers: usize,
) -> Result<(Vec<FetchsimRow>, Report), String> {
    let requests: Vec<WorkerRequest> = shards(workloads, workers)
        .into_iter()
        .map(|shard| {
            WorkerRequest::new(
                parsed,
                "fetch",
                shard.iter().map(|w| w.name().to_owned()).collect(),
            )
        })
        .collect();
    let responses = run_workers(&requests)?;
    let _merge_span = telemetry::span("shard.merge");
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for response in responses {
        rows.extend(decode_fetch_rows(seq(&response, "rows")?)?);
        reports.push(decode_report(field(&response, "report")?)?);
        absorb_worker_metrics(&response)?;
    }
    Ok((rows, merge_reports(reports)))
}

/// Regenerates paper exhibits sharded across `workers` subprocesses:
/// each worker captures its exhibits' text (JSON dumps go straight to
/// the shared `--json` directory); the coordinator returns the
/// concatenated text in exhibit order plus the merged report.
pub fn paper_sharded(
    parsed: &Parsed,
    exhibits: &[String],
    workers: usize,
) -> Result<(String, Report), String> {
    let requests: Vec<WorkerRequest> = shards(exhibits, workers)
        .into_iter()
        .map(|shard| {
            let mut request = WorkerRequest::new(parsed, "paper", shard);
            request.suite = parsed.suite.map(|s| s.to_string());
            request.json_dir = parsed.json_dir.clone();
            request
        })
        .collect();
    let responses = run_workers(&requests)?;
    let _merge_span = telemetry::span("shard.merge");
    let mut text = String::new();
    let mut reports = Vec::new();
    for response in responses {
        text.push_str(str_field(&response, "text")?);
        reports.push(decode_report(field(&response, "report")?)?);
        absorb_worker_metrics(&response)?;
    }
    Ok((text, merge_reports(reports)))
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// One worker shard's sweep payload.
#[derive(Debug, Serialize)]
struct SweepResponse {
    rows: Vec<SweepJsonRow>,
    cpi: Option<Vec<CpiJsonRow>>,
    report: Report,
    /// The shard's metrics snapshot as embedded snapshot JSON
    /// (`None` when telemetry is off).
    metrics: Option<String>,
}

/// One worker shard's fetch payload.
#[derive(Debug, Serialize)]
struct FetchResponse {
    rows: Vec<FetchsimRow>,
    report: Report,
    /// The shard's metrics snapshot (see [`SweepResponse::metrics`]).
    metrics: Option<String>,
}

/// One worker shard's paper payload: the exhibits' captured text.
#[derive(Debug, Serialize)]
struct PaperResponse {
    text: String,
    report: Report,
    /// The shard's metrics snapshot (see [`SweepResponse::metrics`]).
    metrics: Option<String>,
}

/// The intermediate result of one worker task, before the response —
/// split out so the `worker` span can close before the snapshot is
/// taken.
enum TaskData {
    Sweep(SweepRows),
    Fetch(Vec<FetchsimRow>),
    Paper(String),
}

/// The hidden `__worker` subcommand: reads one request from stdin,
/// latches the process-wide knobs exactly as the equivalent
/// single-process subcommand would, runs its shard, and writes one
/// response to stdout.
pub fn worker(argv: &[String]) -> Result<std::process::ExitCode, String> {
    if !argv.is_empty() {
        return Err("__worker reads its request from stdin and takes no arguments".into());
    }
    let mut input = String::new();
    std::io::Read::read_to_string(&mut std::io::stdin(), &mut input)
        .map_err(|e| format!("cannot read worker request: {e}"))?;
    let request = serde_json::from_str(&input).map_err(|e| format!("malformed request: {e}"))?;

    match field(&request, "cache")? {
        Value::Null => std::env::remove_var(util::TRACE_CACHE_ENV),
        v => std::env::set_var(util::TRACE_CACHE_ENV, as_str(v, "cache")?),
    }
    if let Some(n) = opt_u64(&request, "batch_size")? {
        rebalance_trace::set_batch_capacity(n as usize).map_err(|e| e.to_string())?;
    }
    if let Some(name) = opt_str(&request, "backend")? {
        let choice = rebalance_trace::BackendChoice::parse(name)
            .ok_or_else(|| format!("unknown backend `{name}`"))?;
        rebalance_trace::set_compute_backend(choice);
    }
    let sample = opt_u64(&request, "sample")?;
    let sample_k = opt_u64(&request, "sample_k")?;
    if sample.is_some() || sample_k.is_some() {
        let mut cfg = rebalance_trace::SamplingConfig::default();
        if let Some(n) = sample {
            cfg = cfg.with_intervals(n as usize);
        }
        if let Some(k) = sample_k {
            cfg = cfg.with_k(k as usize);
        }
        util::set_sampling(Some(cfg));
    }
    let scale_spelling = str_field(&request, "scale")?;
    let scale = driver::parse_scale(scale_spelling)
        .ok_or_else(|| format!("invalid scale `{scale_spelling}`"))?;
    let model = opt_str(&request, "model")?
        .map(|name| {
            rebalance_coresim::FetchModelKind::parse(name)
                .ok_or_else(|| format!("unknown model `{name}`"))
        })
        .transpose()?;
    let items: Vec<String> = seq(&request, "items")?
        .iter()
        .map(|v| as_str(v, "items").map(str::to_owned))
        .collect::<Result<_, _>>()?;

    // The coordinator's --metrics (or its env latch) propagates to
    // every shard, so worker-side stages are instrumented too.
    if field(&request, "metrics")?.as_bool().unwrap_or(false) {
        telemetry::set_enabled(true);
    }

    // Scope the response's report to this shard's replays (nothing ran
    // yet in this process, but the delta is the contract).
    let baseline = util::report_baseline();
    let data = {
        // Every stage this shard runs nests under one `worker` span,
        // closed before the snapshot so the snapshot sees it.
        let _worker_span = telemetry::span("worker");
        match str_field(&request, "task")? {
            "sweep" => {
                let workloads = args::resolve_workloads(&items, false, None)?;
                TaskData::Sweep(crate::sweep_cmd::compute(&workloads, scale, model))
            }
            "fetch" => {
                let workloads = args::resolve_workloads(&items, false, None)?;
                let grid = rebalance_experiments::fetchsim::default_grid();
                TaskData::Fetch(
                    rebalance_experiments::fetchsim::sweep_grid(workloads, scale, &grid).rows,
                )
            }
            "paper" => {
                if let Some(name) = opt_str(&request, "suite")? {
                    let suite =
                        Suite::parse(name).ok_or_else(|| format!("unknown suite `{name}`"))?;
                    util::set_suite_filter(Some(suite));
                }
                if let Some(kind) = model {
                    rebalance_coresim::set_default_fetch_model(kind);
                }
                let json_dir = opt_str(&request, "json_dir")?.map(std::path::PathBuf::from);
                let mut buffer = Vec::new();
                driver::run_exhibits(&items, scale, json_dir.as_deref(), &mut buffer)
                    .map_err(|e| e.to_string())?;
                TaskData::Paper(String::from_utf8_lossy(&buffer).into_owned())
            }
            other => return Err(format!("unknown worker task `{other}`")),
        }
    };
    let report = util::sweep_report_since(&baseline);
    let metrics = telemetry::enabled().then(|| telemetry::snapshot().to_json());
    let response = match data {
        TaskData::Sweep(data) => serde_json::to_string(&SweepResponse {
            rows: data.rows,
            cpi: data.cpi,
            report,
            metrics,
        }),
        TaskData::Fetch(rows) => serde_json::to_string(&FetchResponse {
            rows,
            report,
            metrics,
        }),
        TaskData::Paper(text) => serde_json::to_string(&PaperResponse {
            text,
            report,
            metrics,
        }),
    }
    .map_err(|e| e.to_string())?;
    crate::print_ignoring_pipe(&response);
    Ok(std::process::ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// Wire decoding (the vendored serde deserializes to `Value` trees only)
// ---------------------------------------------------------------------------

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn as_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, String> {
    v.as_str()
        .ok_or_else(|| format!("`{what}` is not a string"))
}

fn as_seq<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], String> {
    v.as_seq()
        .ok_or_else(|| format!("`{what}` is not an array"))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    as_str(field(v, key)?, key)
}

fn seq<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    as_seq(field(v, key)?, key)
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("`{key}` is not an unsigned integer"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    let v = field(v, key)?;
    // The writer renders non-finite floats as `null`; round-trip them.
    if v.is_null() {
        return Ok(f64::NAN);
    }
    v.as_f64().ok_or_else(|| format!("`{key}` is not a number"))
}

fn opt_str<'a>(v: &'a Value, key: &str) -> Result<Option<&'a str>, String> {
    match field(v, key)? {
        Value::Null => Ok(None),
        v => as_str(v, key).map(Some),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match field(v, key)? {
        Value::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` is not an unsigned integer")),
    }
}

fn f64_seq(v: &Value, what: &str) -> Result<Vec<f64>, String> {
    as_seq(v, what)?
        .iter()
        .map(|x| {
            if x.is_null() {
                return Ok(f64::NAN);
            }
            x.as_f64()
                .ok_or_else(|| format!("`{what}` holds a non-number"))
        })
        .collect()
}

/// The suite a workload name belongs to, via the (deterministic)
/// registry — suites are not transported over the wire.
fn suite_of(workload: &str) -> Result<Suite, String> {
    rebalance_workloads::find(workload)
        .map(|w| w.suite())
        .ok_or_else(|| format!("worker returned unknown workload `{workload}`"))
}

fn decode_sweep_rows(rows: &[Value]) -> Result<Vec<SweepJsonRow>, String> {
    rows.iter()
        .map(|r| {
            let workload = str_field(r, "workload")?.to_owned();
            Ok(SweepJsonRow {
                suite: suite_of(&workload)?,
                mpki: f64_seq(field(r, "mpki")?, "mpki")?,
                workload,
            })
        })
        .collect()
}

fn decode_cpi_rows(rows: &[Value]) -> Result<Vec<CpiJsonRow>, String> {
    rows.iter()
        .map(|r| {
            let workload = str_field(r, "workload")?.to_owned();
            Ok(CpiJsonRow {
                suite: suite_of(&workload)?,
                section: str_field(r, "section")?.to_owned(),
                baseline_cpi: f64_field(r, "baseline_cpi")?,
                tailored_cpi: f64_field(r, "tailored_cpi")?,
                workload,
            })
        })
        .collect()
}

fn decode_fetch_rows(rows: &[Value]) -> Result<Vec<FetchsimRow>, String> {
    rows.iter()
        .map(|r| {
            let workload = str_field(r, "workload")?.to_owned();
            let summaries = seq(r, "summaries")?
                .iter()
                .map(|s| {
                    Ok(FetchSummary {
                        bandwidth: f64_field(s, "bandwidth")?,
                        serial_bandwidth: f64_field(s, "serial_bandwidth")?,
                        parallel_bandwidth: f64_field(s, "parallel_bandwidth")?,
                        cycles: u64_field(s, "cycles")?,
                        mispredict_cpk: f64_field(s, "mispredict_cpk")?,
                        resteer_cpk: f64_field(s, "resteer_cpk")?,
                        icache_cpk: f64_field(s, "icache_cpk")?,
                        ftq_empty_cpk: f64_field(s, "ftq_empty_cpk")?,
                    })
                })
                .collect::<Result<_, String>>()?;
            Ok(FetchsimRow {
                suite: suite_of(&workload)?,
                workload,
                summaries,
            })
        })
        .collect()
}

fn decode_cache_stats(v: &Value) -> Result<CacheStats, String> {
    Ok(CacheStats {
        hits: u64_field(v, "hits")?,
        misses: u64_field(v, "misses")?,
        generations: u64_field(v, "generations")?,
        rejected: u64_field(v, "rejected")?,
        write_failures: u64_field(v, "write_failures")?,
        coalesced: u64_field(v, "coalesced")?,
        tmp_swept: u64_field(v, "tmp_swept")?,
        bytes_read: u64_field(v, "bytes_read")?,
        bytes_written: u64_field(v, "bytes_written")?,
        lock_wait_ns: u64_field(v, "lock_wait_ns")?,
    })
}

fn decode_report(v: &Value) -> Result<Report, String> {
    let cache = match field(v, "cache")? {
        Value::Null => None,
        stats => Some(decode_cache_stats(stats)?),
    };
    let backend = match field(v, "backend")? {
        Value::Null => None,
        b => Some(
            ComputeBackend::parse(as_str(b, "backend")?)
                .ok_or_else(|| format!("unknown backend `{b:?}`"))?,
        ),
    };
    let lanes = match field(v, "lanes")? {
        Value::Null => None,
        l => Some(LaneFill {
            instructions: u64_field(l, "instructions")?,
            branches: u64_field(l, "branches")?,
        }),
    };
    Ok(Report {
        replays: u64_field(v, "replays")?,
        cache,
        backend,
        lanes,
    })
}

/// Decodes a worker's `metrics.json`-shaped snapshot back into a
/// [`MetricsSnapshot`] (the vendored serde deserializes to `Value`
/// trees only, so this is hand-rolled like the report decoders).
fn decode_metrics(v: &Value) -> Result<MetricsSnapshot, String> {
    let version = u64_field(v, "version")?;
    if version != u64::from(telemetry::SNAPSHOT_VERSION) {
        return Err(format!("unsupported metrics snapshot version {version}"));
    }
    let mut snap = MetricsSnapshot::default();
    for (name, value) in map(v, "counters")? {
        snap.counters.insert(
            name.clone(),
            value
                .as_u64()
                .ok_or_else(|| format!("counter `{name}` is not an unsigned integer"))?,
        );
    }
    for (name, value) in map(v, "gauges")? {
        snap.gauges.insert(
            name.clone(),
            value
                .as_i64()
                .ok_or_else(|| format!("gauge `{name}` is not an integer"))?,
        );
    }
    for (name, value) in map(v, "histograms")? {
        let buckets = as_seq(field(value, "buckets")?, "buckets")?
            .iter()
            .map(|b| {
                b.as_u64()
                    .ok_or_else(|| format!("histogram `{name}` holds a non-integer bucket"))
            })
            .collect::<Result<_, _>>()?;
        snap.histograms.insert(
            name.clone(),
            HistogramSnapshot {
                count: u64_field(value, "count")?,
                sum: u64_field(value, "sum")?,
                buckets,
            },
        );
    }
    snap.spans = decode_span(field(v, "spans")?)?;
    Ok(snap)
}

fn decode_span(v: &Value) -> Result<SpanNode, String> {
    let mut node = SpanNode {
        total_ns: u64_field(v, "total_ns")?,
        count: u64_field(v, "count")?,
        ..SpanNode::default()
    };
    // Leaf nodes omit the `children` key entirely.
    if let Some(children) = v.get("children") {
        for (name, child) in children
            .as_map()
            .ok_or_else(|| "`children` is not an object".to_owned())?
        {
            node.children.insert(name.clone(), decode_span(child)?);
        }
    }
    Ok(node)
}

fn map<'a>(v: &'a Value, key: &str) -> Result<&'a [(String, Value)], String> {
    field(v, key)?
        .as_map()
        .ok_or_else(|| format!("`{key}` is not an object"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_contiguous_and_balanced() {
        let items: Vec<u32> = (0..7).collect();
        let chunks = shards(&items, 3);
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4], vec![5, 6]]);
        let flat: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items, "concatenation preserves selection order");
        // More workers than items: one singleton shard each, no empties.
        assert_eq!(shards(&items[..2], 8), vec![vec![0], vec![1]]);
        assert_eq!(shards(&items, 1), vec![items.clone()]);
        assert!(shards(&[] as &[u32], 4).is_empty());
    }

    #[test]
    fn scale_arg_round_trips_through_parse_scale() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Full, Scale::Custom(0.35)] {
            let spelled = scale_arg(scale);
            let parsed = driver::parse_scale(&spelled).expect("spelling must re-parse");
            assert_eq!(parsed, scale, "{spelled}");
        }
    }

    #[test]
    fn report_round_trips_over_the_wire() {
        let report = Report {
            replays: 47,
            cache: Some(CacheStats {
                hits: 40,
                misses: 7,
                generations: 7,
                rejected: 1,
                write_failures: 2,
                coalesced: 3,
                tmp_swept: 4,
                bytes_read: 123_456,
                bytes_written: 789,
                lock_wait_ns: 5_000_000,
            }),
            backend: Some(ComputeBackend::Wide),
            lanes: Some(LaneFill {
                instructions: 1_000_000,
                branches: 150_000,
            }),
        };
        let json = serde_json::to_string(&report).unwrap();
        let decoded = decode_report(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(decoded, report);
        // Sparse reports (no cache, mixed backend) round-trip too.
        let sparse = Report {
            replays: 3,
            ..Report::default()
        };
        let json = serde_json::to_string(&sparse).unwrap();
        let decoded = decode_report(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(decoded, sparse);
    }

    #[test]
    fn metrics_snapshot_round_trips_over_the_wire() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("cache.hits".into(), 12);
        snap.counters.insert("replay.events".into(), 40_000);
        snap.gauges.insert("workers".into(), 2);
        let mut hist = HistogramSnapshot {
            count: 2,
            sum: 1030,
            buckets: vec![0; telemetry::HIST_BUCKETS],
        };
        hist.buckets[10] = 1;
        hist.buckets[4] = 1;
        snap.histograms.insert("cache.generation_ns".into(), hist);
        let mut replay = SpanNode {
            total_ns: 900,
            count: 3,
            ..SpanNode::default()
        };
        replay.children.insert(
            "decode".into(),
            SpanNode {
                total_ns: 400,
                count: 3,
                ..SpanNode::default()
            },
        );
        snap.spans.children.insert("replay".into(), replay);

        let json = snap.to_json();
        let decoded = decode_metrics(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(decoded, snap);

        // An unknown version is a clean error, not a misread.
        let bumped = json.replacen("\"version\":1", "\"version\":999", 1);
        assert!(decode_metrics(&serde_json::from_str(&bumped).unwrap()).is_err());
    }

    #[test]
    fn merge_reports_folds_shard_deltas() {
        let shard = |replays| Report {
            replays,
            ..Report::default()
        };
        let merged = merge_reports([shard(3), shard(4), shard(5)]);
        assert_eq!(merged.replays, 12);
        assert_eq!(merge_reports([]), Report::default());
    }
}
