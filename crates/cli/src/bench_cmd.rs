//! `rebalance bench` — replay-throughput measurement per compute
//! backend, the CLI mirror of the `warm_replay_six_workloads` criterion
//! group plus a sampled-sweep row.
//!
//! Three measurements, all over pre-validated in-memory snapshots so
//! the timed region is purely the delivery spine and the tools:
//!
//! * **warm sweep** — the nine-predictor fan-out replayed per event,
//!   batched-scalar (AoS event structs), and batched-wide (SoA lanes);
//!   dominated by TAGE table compute both sides pay, so the delivery
//!   win shows as a modest ratio here,
//! * **pintools** — the branch-profiling fan-out (mix, direction,
//!   bias) composed dynamically as `ToolSet<Box<dyn Pintool>>`, the
//!   delivery-bound case: batched delivery pays the virtual
//!   transitions once per block and walks only the dense branch
//!   subset, while per-event delivery pays three virtual calls on
//!   every instruction,
//! * **sampled sweep** — phase-sampled replay per backend, reported as
//!   both delivered and effective (full-trace-equivalent) throughput,
//! * **sharded sweep** — the `--workers N` coordinator end to end
//!   (spawn + shard replay + merge) at 1, 2, and 4 workers against a
//!   warm scratch cache, so the subprocess fan-out's scaling is on
//!   record next to the single-process numbers,
//! * **telemetry** — the warm batched sweep timed with telemetry
//!   collection off and on (min-of-passes), the measured overhead
//!   percentage, and the per-stage span breakdown from the enabled
//!   passes. The bench *fails* if enabled-mode overhead exceeds
//!   [`TELEMETRY_OVERHEAD_BUDGET_PCT`], which bounds disabled-mode
//!   overhead too (disabled spans are strictly cheaper: one atomic
//!   load, no clock read).
//!
//! Always writes `BENCH_replay.json` — into `--json DIR` when given,
//! else the current directory.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use rebalance_experiments::util::{f2, TextTable};
use rebalance_frontend::predictor::{DirectionPredictor, PredictorSim};
use rebalance_frontend::PredictorChoice;
use rebalance_pintools::{BbvTool, BranchBiasTool, BranchMixTool, DirectionTool};
use rebalance_telemetry::{self as telemetry, SpanNode};
use rebalance_trace::{
    batch_capacity, compute_backend_choice, set_compute_backend, snapshot, BackendChoice,
    ComputeBackend, NullTool, Pintool, SamplePlan, Snapshot, ToolSet,
};
use serde::Serialize;

use crate::args;

/// Workloads measured when no selection is given — the same six the
/// `warm_replay_six_workloads` criterion group replays, so CLI numbers
/// line up with bench history.
const DEFAULT_ROSTER: [&str; 6] = ["CG", "FT", "MG", "gcc", "CoMD", "swim"];

/// Minimum measured wall time per mode (after one untimed warmup pass).
const MIN_MEASURE: Duration = Duration::from_millis(300);

/// Iteration cap so tiny traces do not spin for thousands of passes.
const MAX_ITERS: u32 = 200;

/// Hard ceiling on the telemetry group's measured enabled-mode
/// overhead; the bench errors beyond it.
const TELEMETRY_OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// The whole dump, `BENCH_replay.json`.
#[derive(Debug, Serialize)]
struct BenchJson {
    host: HostJson,
    scale: String,
    batch_capacity: usize,
    workloads: Vec<String>,
    total_instructions: u64,
    /// Nine-predictor fan-out (the criterion group's tool set).
    warm_sweep: Vec<ModeRow>,
    /// Branch-profiling pintool fan-out (mix + direction + bias),
    /// dynamically composed — the delivery-bound sweep shape.
    pintools: Vec<ModeRow>,
    /// Phase-sampled replay per backend.
    sampled_sweep: Vec<SampledRow>,
    /// `--workers N` coordinator end-to-end, warm scratch cache.
    sharded_sweep: Vec<ShardedRow>,
    /// Telemetry on/off timing plus the per-stage span breakdown.
    telemetry: TelemetryJson,
}

/// Where the numbers came from.
#[derive(Debug, Serialize)]
struct HostJson {
    cpu: String,
    logical_cores: usize,
    os: String,
    arch: String,
}

/// One delivery mode's throughput over the full event stream.
#[derive(Debug, Serialize)]
struct ModeRow {
    mode: String,
    melem_per_s: f64,
    speedup_vs_per_event: f64,
}

/// One backend's sampled-replay throughput. `delivered` counts only
/// events handed to the tools; `effective` credits the full trace the
/// sampled totals reproduce.
#[derive(Debug, Serialize)]
struct SampledRow {
    backend: String,
    delivered_fraction: f64,
    delivered_melem_per_s: f64,
    effective_melem_per_s: f64,
}

/// One worker count's end-to-end sharded-sweep throughput (subprocess
/// spawn, shard replay against a warm scratch cache, and merge all
/// included in the timed region).
#[derive(Debug, Serialize)]
struct ShardedRow {
    workers: usize,
    melem_per_s: f64,
    speedup_vs_one: f64,
}

/// The telemetry group: the warm batched nine-predictor sweep timed
/// with collection off and on, and where the enabled passes' time
/// went, stage by stage.
#[derive(Debug, Serialize)]
struct TelemetryJson {
    /// Compute backend the timed passes used (the auto choice for the
    /// selection's size).
    backend: String,
    /// Min seconds per pass, collection off.
    disabled_secs: f64,
    /// Min seconds per pass, collection on.
    enabled_secs: f64,
    /// `(enabled/disabled - 1) * 100`; negative values are measurement
    /// noise. Must stay within [`TELEMETRY_OVERHEAD_BUDGET_PCT`].
    overhead_pct: f64,
    /// Every span path recorded by the enabled passes, depth-first.
    breakdown: Vec<BreakdownRow>,
}

/// One span path of the telemetry breakdown.
#[derive(Debug, Serialize)]
struct BreakdownRow {
    /// Dot-joined path from the root, e.g. `decode.batch.wide.tools`.
    span: String,
    /// Inclusive milliseconds across all passes.
    total_ms: f64,
    /// Inclusive minus children: this stage's own code.
    self_ms: f64,
    /// Completed spans at this path.
    count: u64,
}

/// Flattens a span tree into dot-joined-path rows, depth-first.
fn flatten_spans(node: &SpanNode, prefix: &str, out: &mut Vec<BreakdownRow>) {
    for (name, child) in &node.children {
        let span = if prefix.is_empty() {
            name.clone()
        } else {
            format!("{prefix}.{name}")
        };
        out.push(BreakdownRow {
            total_ms: child.total_ns as f64 / 1e6,
            self_ms: child.self_ns() as f64 / 1e6,
            count: child.count,
            span: span.clone(),
        });
        flatten_spans(child, &span, out);
    }
}

/// First `model name` from `/proc/cpuinfo`, or a placeholder off Linux.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_owned())
        })
        .unwrap_or_else(|| "unknown".to_owned())
}

fn host() -> HostJson {
    HostJson {
        cpu: cpu_model(),
        logical_cores: std::thread::available_parallelism().map_or(1, usize::from),
        os: std::env::consts::OS.to_owned(),
        arch: std::env::consts::ARCH.to_owned(),
    }
}

/// Times `routine` over fresh `setup()` inputs (setup is untimed, like
/// criterion's `iter_batched`): one warmup pass, then passes until
/// [`MIN_MEASURE`] of measured time or [`MAX_ITERS`]. Returns mean
/// seconds per pass.
fn measure<T>(mut setup: impl FnMut() -> T, mut routine: impl FnMut(&mut T)) -> f64 {
    let mut warm = setup();
    routine(&mut warm);
    let mut total = Duration::ZERO;
    let mut iters = 0u32;
    while (total < MIN_MEASURE || iters < 3) && iters < MAX_ITERS {
        let mut input = setup();
        let start = Instant::now();
        routine(&mut input);
        total += start.elapsed();
        iters += 1;
    }
    total.as_secs_f64() / f64::from(iters)
}

/// Like [`measure`], but returns the *minimum* pass time: the right
/// statistic for an A/B overhead comparison, where any single pass's
/// slowdown is scheduler noise, not the code under test.
fn measure_min<T>(mut setup: impl FnMut() -> T, mut routine: impl FnMut(&mut T)) -> f64 {
    let mut warm = setup();
    routine(&mut warm);
    let mut total = Duration::ZERO;
    let mut iters = 0u32;
    let mut best = f64::INFINITY;
    while (total < MIN_MEASURE || iters < 5) && iters < MAX_ITERS {
        let mut input = setup();
        let start = Instant::now();
        routine(&mut input);
        let elapsed = start.elapsed();
        best = best.min(elapsed.as_secs_f64());
        total += elapsed;
        iters += 1;
    }
    best
}

/// Replays every snapshot into `tool` under one delivery mode:
/// `None` = per event, `Some(backend)` = batched with that backend.
fn replay_all<T: Pintool>(snaps: &[Snapshot<'_>], tool: &mut [T], mode: Option<ComputeBackend>) {
    for (snap, tool) in snaps.iter().zip(tool.iter_mut()) {
        let result = match mode {
            None => snap.replay_per_event(tool),
            Some(backend) => snap.replay_batched_backend(tool, batch_capacity(), backend),
        };
        result.expect("validated snapshot replays");
    }
}

/// The three modes, with their display/JSON labels.
fn modes() -> [(String, Option<ComputeBackend>); 3] {
    [
        ("per_event".to_owned(), None),
        ("batched_scalar".to_owned(), Some(ComputeBackend::Scalar)),
        ("batched_wide".to_owned(), Some(ComputeBackend::Wide)),
    ]
}

/// Seconds-per-pass for each mode → rows with per-event-relative
/// speedups.
fn mode_rows(secs: &[(String, f64)], insts: u64) -> Vec<ModeRow> {
    let per_event_secs = secs[0].1;
    secs.iter()
        .map(|(mode, s)| ModeRow {
            mode: mode.clone(),
            melem_per_s: insts as f64 / s / 1e6,
            speedup_vs_per_event: per_event_secs / s,
        })
        .collect()
}

/// Runs the benchmark and writes `BENCH_replay.json`.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[
        (parsed.force, "--force"),
        (parsed.model.is_some(), "--model"),
        // The bench pins each backend explicitly; a process-wide
        // override would only make one of its own rows lie.
        (
            parsed.backend.is_some(),
            "--backend (bench measures every backend)",
        ),
        // Snapshots are encoded in memory; the on-disk cache never
        // participates.
        (parsed.cache_dir.is_some(), "--cache"),
        (parsed.no_cache, "--no-cache"),
        // Sharding is measured by the bench itself (the sharded_sweep
        // group), not applied to it.
        (parsed.workers.is_some(), "--workers"),
    ])?;
    args::configure_replay(&parsed)?;
    args::configure_metrics(&parsed);

    let workloads = if parsed.positional.is_empty() && !parsed.all && parsed.suite.is_none() {
        let names: Vec<String> = DEFAULT_ROSTER.iter().map(|s| (*s).to_owned()).collect();
        args::resolve_workloads(&names, false, None)?
    } else {
        args::resolve_workloads(&parsed.positional, parsed.all, parsed.suite)?
    };

    // Synthesize + encode once; parse (framing, checksum) once. Every
    // timed pass below replays identical pre-validated snapshots.
    let mut names = Vec::new();
    let mut encoded = Vec::new();
    for w in &workloads {
        let trace = w.trace(parsed.scale)?;
        let (bytes, _info) = snapshot::snapshot_bytes(&trace, 0).map_err(|e| e.to_string())?;
        names.push(w.name().to_owned());
        encoded.push(bytes);
    }
    let snaps: Vec<Snapshot<'_>> = encoded
        .iter()
        .map(|b| Snapshot::parse(b).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let insts: u64 = snaps.iter().map(|s| s.info().summary.instructions).sum();
    if insts == 0 {
        return Err("selection replays zero instructions".into());
    }

    let configs = PredictorChoice::figure5_set();
    let fresh_sims = || -> Vec<ToolSet<PredictorSim<Box<dyn DirectionPredictor>>>> {
        snaps
            .iter()
            .map(|_| ToolSet::from_tools(PredictorChoice::build_sims(&configs)))
            .collect()
    };

    let warm_secs: Vec<(String, f64)> = modes()
        .into_iter()
        .map(|(label, mode)| {
            let s = measure(fresh_sims, |sims| replay_all(&snaps, sims, mode));
            (label, s)
        })
        .collect();
    let warm_sweep = mode_rows(&warm_secs, insts);

    // The delivery-bound case: a dynamically-composed fan-out (the
    // sweep-engine / MultiTool shape). Per-event delivery pays one
    // virtual transition per tool per instruction; batched delivery
    // pays them once per block, and the branch-profiling tools then
    // walk only the dense branch subset (~10% of events).
    let fresh_pintools = || -> Vec<ToolSet<Box<dyn Pintool>>> {
        snaps
            .iter()
            .map(|_| {
                ToolSet::from_tools(vec![
                    Box::new(BranchMixTool::new()) as Box<dyn Pintool>,
                    Box::new(DirectionTool::new()),
                    Box::new(BranchBiasTool::new()),
                ])
            })
            .collect()
    };
    let pintool_secs: Vec<(String, f64)> = modes()
        .into_iter()
        .map(|(label, mode)| {
            let s = measure(fresh_pintools, |tools| replay_all(&snaps, tools, mode));
            (label, s)
        })
        .collect();
    let pintools = mode_rows(&pintool_secs, insts);

    // Sampled sweep: one plan per snapshot (untimed — planning is a
    // per-roster one-off in real sweeps too), then replay only the
    // weighted representatives, per backend.
    let config = args::sampling_config(&parsed).unwrap_or_default();
    let plans: Vec<SamplePlan> = snaps
        .iter()
        .map(|s| {
            SamplePlan::from_snapshot(s, &mut BbvTool::new(config.dims), &config)
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;
    let delivered: u64 = snaps
        .iter()
        .zip(&plans)
        .map(|(s, p)| {
            s.replay_sampled(&mut NullTool, p)
                .expect("validated snapshot replays")
                .delivered_instructions
        })
        .sum();
    let saved_choice = compute_backend_choice();
    let sampled_sweep: Vec<SampledRow> = [ComputeBackend::Scalar, ComputeBackend::Wide]
        .into_iter()
        .map(|backend| {
            set_compute_backend(BackendChoice::Forced(backend));
            let secs = measure(fresh_sims, |sims| {
                for ((snap, plan), set) in snaps.iter().zip(&plans).zip(sims.iter_mut()) {
                    snap.replay_sampled(set, plan)
                        .expect("validated snapshot replays");
                }
            });
            SampledRow {
                backend: backend.to_string(),
                delivered_fraction: delivered as f64 / insts as f64,
                delivered_melem_per_s: delivered as f64 / secs / 1e6,
                effective_melem_per_s: insts as f64 / secs / 1e6,
            }
        })
        .collect();
    set_compute_backend(saved_choice);

    // Sharded sweep: the `--workers N` coordinator end to end — spawn,
    // shard replay, merge — against a scratch cache warmed by one
    // untimed cold pass (so timed passes measure warm, hit-served
    // shards, matching the other warm groups).
    let scratch =
        std::env::temp_dir().join(format!("rebalance-bench-shard-{}", std::process::id()));
    let shard_parsed = args::Parsed {
        positional: names.clone(),
        scale: parsed.scale,
        cache_dir: Some(scratch.to_string_lossy().into_owned()),
        batch_size: parsed.batch_size,
        ..args::Parsed::default()
    };
    let mut sharded_sweep = Vec::new();
    let mut one_worker_secs = 0.0;
    for workers in [1usize, 2, 4] {
        let run = || crate::shard::sweep_sharded(&shard_parsed, &workloads, workers);
        // Untimed warm-up; its merged report tells how many events one
        // sharded pass delivers to the tools.
        let (_, report) = run()?;
        let delivered = report.lanes.map_or(insts, |l| l.instructions);
        let secs = measure(|| (), |_: &mut ()| drop(run().expect("warm sharded sweep")));
        if workers == 1 {
            one_worker_secs = secs;
        }
        sharded_sweep.push(ShardedRow {
            workers,
            melem_per_s: delivered as f64 / secs / 1e6,
            speedup_vs_one: one_worker_secs / secs,
        });
    }
    let _ = std::fs::remove_dir_all(&scratch);

    // Telemetry overhead: the same warm batched sweep with collection
    // off, then on, min-of-passes so the delta is instrumentation
    // cost rather than scheduler noise. The enabled passes also feed
    // the per-stage breakdown below.
    let bench_backend = rebalance_trace::select_backend(insts);
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(false);
    let disabled_secs = measure_min(fresh_sims, |sims| {
        replay_all(&snaps, sims, Some(bench_backend))
    });
    telemetry::set_enabled(true);
    let enabled_secs = measure_min(fresh_sims, |sims| {
        replay_all(&snaps, sims, Some(bench_backend))
    });
    let mut breakdown = Vec::new();
    flatten_spans(&telemetry::snapshot().spans, "", &mut breakdown);
    telemetry::set_enabled(was_enabled);
    let overhead_pct = (enabled_secs / disabled_secs - 1.0) * 100.0;
    if overhead_pct > TELEMETRY_OVERHEAD_BUDGET_PCT {
        return Err(format!(
            "telemetry overhead {overhead_pct:.2}% exceeds the \
             {TELEMETRY_OVERHEAD_BUDGET_PCT}% budget \
             (disabled {disabled_secs:.4}s vs enabled {enabled_secs:.4}s per pass)"
        ));
    }
    let telemetry_group = TelemetryJson {
        backend: bench_backend.to_string(),
        disabled_secs,
        enabled_secs,
        overhead_pct,
        breakdown,
    };

    let json = BenchJson {
        host: host(),
        scale: parsed.scale.to_string(),
        batch_capacity: batch_capacity(),
        workloads: names,
        total_instructions: insts,
        warm_sweep,
        pintools,
        sampled_sweep,
        sharded_sweep,
        telemetry: telemetry_group,
    };
    let dir = parsed.json_dir.as_deref().unwrap_or(".");
    crate::write_json(dir, "BENCH_replay", &json)?;

    let mut t = TextTable::new(vec!["group", "mode", "Melem/s", "vs per_event"]);
    for (group, rows) in [
        ("warm_sweep", &json.warm_sweep),
        ("pintools", &json.pintools),
    ] {
        for r in rows {
            t.row(vec![
                group.to_owned(),
                r.mode.clone(),
                f2(r.melem_per_s),
                format!("{}x", f2(r.speedup_vs_per_event)),
            ]);
        }
    }
    for r in &json.sampled_sweep {
        t.row(vec![
            "sampled_sweep".to_owned(),
            format!("batched_{}", r.backend),
            f2(r.delivered_melem_per_s),
            format!("{} effective", f2(r.effective_melem_per_s)),
        ]);
    }
    for r in &json.sharded_sweep {
        t.row(vec![
            "sharded_sweep".to_owned(),
            format!("workers_{}", r.workers),
            f2(r.melem_per_s),
            format!("{}x vs workers_1", f2(r.speedup_vs_one)),
        ]);
    }
    t.row(vec![
        "telemetry".to_owned(),
        "disabled".to_owned(),
        f2(insts as f64 / json.telemetry.disabled_secs / 1e6),
        "baseline".to_owned(),
    ]);
    t.row(vec![
        "telemetry".to_owned(),
        "enabled".to_owned(),
        f2(insts as f64 / json.telemetry.enabled_secs / 1e6),
        format!("{:+.2}% overhead", json.telemetry.overhead_pct),
    ]);
    crate::print_ignoring_pipe(&format!(
        "replay throughput ({} events over {} workload(s), scale {}, batch {})\n{}wrote {}/BENCH_replay.json\n",
        insts,
        json.workloads.len(),
        json.scale,
        json.batch_capacity,
        t.render(),
        dir,
    ));
    crate::metrics::emit(&parsed)?;
    Ok(ExitCode::SUCCESS)
}
