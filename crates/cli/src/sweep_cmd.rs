//! `rebalance sweep` — the nine-configuration predictor sweep, replays
//! served from the trace cache.
//!
//! The command is split into a *compute* half (replay the selection,
//! reduce to plain per-workload rows) and a *render* half (tables and
//! JSON from those rows). A single-process run chains the two; with
//! `--workers N` the compute half runs inside worker subprocesses over
//! shards of the selection and the coordinator renders the merged rows
//! through the very same render half, so both modes print bit-identical
//! output.

use std::process::ExitCode;

use rebalance_coresim::{CoreModel, FetchModelKind};
use rebalance_experiments::util::{self, f2, TextTable};
use rebalance_frontend::{CoreKind, PredictorChoice};
use rebalance_workloads::{Suite, Workload};
use serde::Serialize;

use crate::args;

/// Machine-readable mirror of the printed MPKI table (`--json DIR`
/// writes it as `sweep.json`, next to the shared `report.json`).
#[derive(Debug, Serialize)]
struct SweepJson {
    scale: String,
    configs: Vec<String>,
    rows: Vec<SweepJsonRow>,
}

/// One workload's MPKI under every configuration.
#[derive(Debug, Serialize)]
pub(crate) struct SweepJsonRow {
    pub(crate) workload: String,
    pub(crate) suite: Suite,
    pub(crate) mpki: Vec<f64>,
}

/// The reduced result of the sweep's compute half: everything the
/// render half (or a shard coordinator) needs, with no live tools.
#[derive(Debug, Serialize)]
pub(crate) struct SweepRows {
    pub(crate) rows: Vec<SweepJsonRow>,
    pub(crate) cpi: Option<Vec<CpiJsonRow>>,
}

/// Replays the selection and reduces it to per-workload rows; with
/// `model`, a second shared replay per workload measures both paper
/// cores' CPI through the chosen timing backend.
pub(crate) fn compute(
    workloads: &[Workload],
    scale: rebalance_workloads::Scale,
    model: Option<FetchModelKind>,
) -> SweepRows {
    let configs = PredictorChoice::figure5_set();
    // Each predictor sim is wrapped in `Timed`, so with telemetry on,
    // every config's `on_batch` time lands on its own
    // `tool.<label>.on_batch_ns` counter. `Timed` derefs to the sim,
    // so `.report()` below is unchanged.
    let rows = util::sweep_weighted(workloads.to_vec(), scale, |_| {
        PredictorChoice::build_sims(&configs)
            .into_iter()
            .zip(&configs)
            .map(|(sim, choice)| rebalance_trace::Timed::new(&choice.label(), sim))
            .collect()
    })
    .iter()
    .map(|o| SweepJsonRow {
        workload: o.item.name().to_owned(),
        suite: o.item.suite(),
        mpki: o.tools.iter().map(|s| s.report().total().mpki()).collect(),
    })
    .collect();
    SweepRows {
        rows,
        cpi: model.map(|kind| measure_cpi(workloads, scale, kind)),
    }
}

/// Runs the sweep and prints MPKI plus the shared replay/cache report:
/// per-suite means over multi-suite selections, per-workload rows when
/// a single suite is selected (`--suite kernels` reads best that way).
/// With `--model {penalty,ftq}`, a per-workload CPI table measured
/// through the chosen timing backend follows. With `--workers N` the
/// selection is sharded across N worker subprocesses sharing the
/// on-disk cache.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[(parsed.force, "--force")])?;
    let workloads = args::resolve_workloads(&parsed.positional, parsed.all, parsed.suite)?;
    // The experiments crate opens its process-wide cache from the
    // environment on first use; this routes every replay below through
    // the on-disk cache (or explicitly disables it). The batch size is
    // latched the same way, before the first replay.
    args::configure_cache_env(&parsed);
    args::configure_replay(&parsed)?;
    args::configure_sampling(&parsed);
    args::configure_metrics(&parsed);

    let configs = PredictorChoice::figure5_set();
    let (data, report) = {
        // The whole compute half nests under one `sweep` span, closed
        // before the snapshot `metrics::emit` takes below.
        let _sweep_span = rebalance_telemetry::span("sweep");
        match parsed.workers {
            Some(workers) => crate::shard::sweep_sharded(&parsed, &workloads, workers)?,
            None => (
                compute(&workloads, parsed.scale, parsed.model),
                util::sweep_report(),
            ),
        }
    };

    let suites: Vec<Suite> = Suite::ALL
        .into_iter()
        .filter(|s| data.rows.iter().any(|r| r.suite == *s))
        .collect();

    let table = if suites.len() == 1 {
        // Single suite: per-workload rows, configs as columns.
        let mut header = vec!["workload".to_owned()];
        header.extend(configs.iter().map(|c| c.label()));
        let mut t = TextTable::new(header);
        for r in &data.rows {
            let mut cells = vec![r.workload.clone()];
            cells.extend(r.mpki.iter().map(|m| f2(*m)));
            t.row(cells);
        }
        t
    } else {
        // Multi-suite: per-suite means, suites as columns.
        let mut header = vec!["config".to_owned()];
        header.extend(suites.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for (ci, config) in configs.iter().enumerate() {
            let mut cells = vec![config.label()];
            for suite in &suites {
                let mpki = util::mean(
                    data.rows
                        .iter()
                        .filter(|r| r.suite == *suite)
                        .map(|r| r.mpki[ci]),
                );
                cells.push(f2(mpki));
            }
            t.row(cells);
        }
        t
    };
    let heading = if suites.len() == 1 {
        format!("branch MPKI per workload ({} suite)", suites[0])
    } else {
        "branch MPKI per predictor configuration (mean per suite)".to_owned()
    };

    let cpi = data.cpi.map(|rows| CpiJson {
        model: parsed
            .model
            .expect("CPI rows exist only with --model")
            .to_string(),
        rows,
    });

    if let Some(dir) = &parsed.json_dir {
        let json = SweepJson {
            scale: parsed.scale.to_string(),
            configs: configs.iter().map(|c| c.label()).collect(),
            rows: data.rows,
        };
        crate::write_json(dir, "sweep", &json)?;
        // Everything `--model` adds to the terminal lands in the dump
        // too, as its own file.
        if let Some(cpi) = &cpi {
            crate::write_json(dir, "cpi", cpi)?;
        }
        crate::write_json(dir, "report", &report)?;
    }

    crate::print_ignoring_pipe(&format!(
        "{heading}\n{}{}{report}\n",
        table.render(),
        cpi.as_ref().map(render_cpi).unwrap_or_default(),
    ));
    crate::metrics::emit(&parsed)?;
    Ok(ExitCode::SUCCESS)
}

/// Per-workload CPI of both paper cores under one timing backend — the
/// `--model` addendum, printed and (with `--json`) dumped as
/// `cpi.json`.
#[derive(Debug, Serialize)]
struct CpiJson {
    model: String,
    rows: Vec<CpiJsonRow>,
}

/// One workload's CPI on its dominant section.
#[derive(Debug, Serialize)]
pub(crate) struct CpiJsonRow {
    pub(crate) workload: String,
    pub(crate) suite: Suite,
    pub(crate) section: String,
    pub(crate) baseline_cpi: f64,
    pub(crate) tailored_cpi: f64,
}

/// Measures both paper cores over the selection through the chosen
/// timing backend (one additional cache-served replay per workload —
/// both cores share it).
fn measure_cpi(
    workloads: &[Workload],
    scale: rebalance_workloads::Scale,
    kind: FetchModelKind,
) -> Vec<CpiJsonRow> {
    let models = [
        CoreModel::new(CoreKind::Baseline).with_fetch_model(kind),
        CoreModel::new(CoreKind::Tailored).with_fetch_model(kind),
    ];
    util::sweep_weighted(workloads.to_vec(), scale, |_| {
        models.iter().map(CoreModel::fetch_tools).collect()
    })
    .iter()
    .map(|o| {
        let backend = o.item.profile().backend;
        let section = if o.item.suite().has_parallel_sections() {
            rebalance_trace::Section::Parallel
        } else {
            rebalance_trace::Section::Serial
        };
        let cpis: Vec<f64> = models
            .iter()
            .zip(&o.tools)
            .map(|(m, tools)| m.timing_of(tools, &backend).section(section).cpi)
            .collect();
        CpiJsonRow {
            workload: o.item.name().to_owned(),
            suite: o.item.suite(),
            section: format!("{section:?}").to_lowercase(),
            baseline_cpi: cpis[0],
            tailored_cpi: cpis[1],
        }
    })
    .collect()
}

/// Renders the CPI addendum as a table.
fn render_cpi(cpi: &CpiJson) -> String {
    let mut t = TextTable::new(vec![
        "workload",
        "section",
        "baseline CPI",
        "tailored CPI",
        "tailored/baseline",
    ]);
    for r in &cpi.rows {
        t.row(vec![
            r.workload.clone(),
            r.section.clone(),
            f2(r.baseline_cpi),
            f2(r.tailored_cpi),
            f2(r.tailored_cpi / r.baseline_cpi),
        ]);
    }
    format!("per-workload CPI ({} model)\n{}", cpi.model, t.render())
}
