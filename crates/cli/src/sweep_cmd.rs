//! `rebalance sweep` — the nine-configuration predictor sweep, replays
//! served from the trace cache.

use std::process::ExitCode;

use rebalance_coresim::{CoreModel, FetchModelKind};
use rebalance_experiments::util::{self, f2, TextTable};
use rebalance_frontend::{CoreKind, PredictorChoice};
use rebalance_workloads::{Suite, Workload};
use serde::Serialize;

use crate::args;

/// Machine-readable mirror of the printed MPKI table (`--json DIR`
/// writes it as `sweep.json`, next to the shared `report.json`).
#[derive(Debug, Serialize)]
struct SweepJson {
    scale: String,
    configs: Vec<String>,
    rows: Vec<SweepJsonRow>,
}

/// One workload's MPKI under every configuration.
#[derive(Debug, Serialize)]
struct SweepJsonRow {
    workload: String,
    suite: Suite,
    mpki: Vec<f64>,
}

/// Runs the sweep and prints MPKI plus the shared replay/cache report:
/// per-suite means over multi-suite selections, per-workload rows when
/// a single suite is selected (`--suite kernels` reads best that way).
/// With `--model {penalty,ftq}`, a per-workload CPI table measured
/// through the chosen timing backend follows.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[(parsed.force, "--force")])?;
    let workloads = args::resolve_workloads(&parsed.positional, parsed.all, parsed.suite)?;
    // The experiments crate opens its process-wide cache from the
    // environment on first use; this routes every replay below through
    // the on-disk cache (or explicitly disables it). The batch size is
    // latched the same way, before the first replay.
    args::configure_cache_env(&parsed);
    args::configure_replay(&parsed)?;
    args::configure_sampling(&parsed);

    let configs = PredictorChoice::figure5_set();
    let outcomes = util::sweep_weighted(workloads.clone(), parsed.scale, |_| {
        PredictorChoice::build_sims(&configs)
    });

    let suites: Vec<Suite> = Suite::ALL
        .into_iter()
        .filter(|s| outcomes.iter().any(|o| o.item.suite() == *s))
        .collect();

    let table = if suites.len() == 1 {
        // Single suite: per-workload rows, configs as columns.
        let mut header = vec!["workload".to_owned()];
        header.extend(configs.iter().map(|c| c.label()));
        let mut t = TextTable::new(header);
        for o in &outcomes {
            let mut cells = vec![o.item.name().to_owned()];
            cells.extend(o.tools.iter().map(|s| f2(s.report().total().mpki())));
            t.row(cells);
        }
        t
    } else {
        // Multi-suite: per-suite means, suites as columns.
        let mut header = vec!["config".to_owned()];
        header.extend(suites.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for (ci, config) in configs.iter().enumerate() {
            let mut cells = vec![config.label()];
            for suite in &suites {
                let mpki = util::mean(
                    outcomes
                        .iter()
                        .filter(|o| o.item.suite() == *suite)
                        .map(|o| o.tools[ci].report().total().mpki()),
                );
                cells.push(f2(mpki));
            }
            t.row(cells);
        }
        t
    };
    let heading = if suites.len() == 1 {
        format!("branch MPKI per workload ({} suite)", suites[0])
    } else {
        "branch MPKI per predictor configuration (mean per suite)".to_owned()
    };

    let cpi = parsed
        .model
        .map(|kind| measure_cpi(&workloads, parsed.scale, kind));

    if let Some(dir) = &parsed.json_dir {
        let json = SweepJson {
            scale: parsed.scale.to_string(),
            configs: configs.iter().map(|c| c.label()).collect(),
            rows: outcomes
                .iter()
                .map(|o| SweepJsonRow {
                    workload: o.item.name().to_owned(),
                    suite: o.item.suite(),
                    mpki: o.tools.iter().map(|s| s.report().total().mpki()).collect(),
                })
                .collect(),
        };
        crate::write_json(dir, "sweep", &json)?;
        // Everything `--model` adds to the terminal lands in the dump
        // too, as its own file.
        if let Some(cpi) = &cpi {
            crate::write_json(dir, "cpi", cpi)?;
        }
        crate::write_json(dir, "report", &util::sweep_report())?;
    }

    crate::print_ignoring_pipe(&format!(
        "{heading}\n{}{}{}\n",
        table.render(),
        cpi.as_ref().map(render_cpi).unwrap_or_default(),
        util::sweep_report()
    ));
    Ok(ExitCode::SUCCESS)
}

/// Per-workload CPI of both paper cores under one timing backend — the
/// `--model` addendum, printed and (with `--json`) dumped as
/// `cpi.json`.
#[derive(Debug, Serialize)]
struct CpiJson {
    model: String,
    rows: Vec<CpiJsonRow>,
}

/// One workload's CPI on its dominant section.
#[derive(Debug, Serialize)]
struct CpiJsonRow {
    workload: String,
    suite: Suite,
    section: String,
    baseline_cpi: f64,
    tailored_cpi: f64,
}

/// Measures both paper cores over the selection through the chosen
/// timing backend (one additional cache-served replay per workload —
/// both cores share it).
fn measure_cpi(
    workloads: &[Workload],
    scale: rebalance_workloads::Scale,
    kind: FetchModelKind,
) -> CpiJson {
    let models = [
        CoreModel::new(CoreKind::Baseline).with_fetch_model(kind),
        CoreModel::new(CoreKind::Tailored).with_fetch_model(kind),
    ];
    let rows = util::sweep_weighted(workloads.to_vec(), scale, |_| {
        models.iter().map(CoreModel::fetch_tools).collect()
    })
    .iter()
    .map(|o| {
        let backend = o.item.profile().backend;
        let section = if o.item.suite().has_parallel_sections() {
            rebalance_trace::Section::Parallel
        } else {
            rebalance_trace::Section::Serial
        };
        let cpis: Vec<f64> = models
            .iter()
            .zip(&o.tools)
            .map(|(m, tools)| m.timing_of(tools, &backend).section(section).cpi)
            .collect();
        CpiJsonRow {
            workload: o.item.name().to_owned(),
            suite: o.item.suite(),
            section: format!("{section:?}").to_lowercase(),
            baseline_cpi: cpis[0],
            tailored_cpi: cpis[1],
        }
    })
    .collect();
    CpiJson {
        model: kind.to_string(),
        rows,
    }
}

/// Renders the CPI addendum as a table.
fn render_cpi(cpi: &CpiJson) -> String {
    let mut t = TextTable::new(vec![
        "workload",
        "section",
        "baseline CPI",
        "tailored CPI",
        "tailored/baseline",
    ]);
    for r in &cpi.rows {
        t.row(vec![
            r.workload.clone(),
            r.section.clone(),
            f2(r.baseline_cpi),
            f2(r.tailored_cpi),
            f2(r.tailored_cpi / r.baseline_cpi),
        ]);
    }
    format!("per-workload CPI ({} model)\n{}", cpi.model, t.render())
}
