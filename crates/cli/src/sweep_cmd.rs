//! `rebalance sweep` — the nine-configuration predictor sweep, replays
//! served from the trace cache.

use std::process::ExitCode;

use rebalance_experiments::util::{self, f2, TextTable};
use rebalance_frontend::PredictorChoice;
use rebalance_workloads::Suite;

use crate::args;

/// Runs the sweep and prints per-suite mean MPKI plus the shared
/// replay/cache report.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[
        (parsed.json_dir.is_some(), "--json"),
        (parsed.force, "--force"),
    ])?;
    let workloads = args::resolve_workloads(&parsed.positional, parsed.all)?;
    // The experiments crate opens its process-wide cache from the
    // environment on first use; this routes every replay below through
    // the on-disk cache (or explicitly disables it). The batch size is
    // latched the same way, before the first replay.
    args::configure_cache_env(&parsed);
    args::configure_batch_env(&parsed);

    let configs = PredictorChoice::figure5_set();
    let outcomes = util::sweep(workloads, parsed.scale, |_| {
        PredictorChoice::build_sims(&configs)
    });

    let mut table = TextTable::new(vec!["config", "ExMatEx", "SPEC OMP", "NPB", "SPEC CPU INT"]);
    for (ci, config) in configs.iter().enumerate() {
        let mut cells = vec![config.label()];
        for suite in Suite::ALL {
            let mpki = util::mean(
                outcomes
                    .iter()
                    .filter(|o| o.item.suite() == suite)
                    .map(|o| o.tools[ci].report().total().mpki()),
            );
            cells.push(f2(mpki));
        }
        table.row(cells);
    }
    crate::print_ignoring_pipe(&format!(
        "branch MPKI per predictor configuration (mean per suite)\n{}{}\n",
        table.render(),
        util::sweep_report()
    ));
    Ok(ExitCode::SUCCESS)
}
