//! `rebalance sweep` — the nine-configuration predictor sweep, replays
//! served from the trace cache.

use std::process::ExitCode;

use rebalance_experiments::util::{self, f2, TextTable};
use rebalance_frontend::PredictorChoice;
use rebalance_workloads::Suite;

use crate::args;

/// Runs the sweep and prints MPKI plus the shared replay/cache report:
/// per-suite means over multi-suite selections, per-workload rows when
/// a single suite is selected (`--suite kernels` reads best that way).
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[
        (parsed.json_dir.is_some(), "--json"),
        (parsed.force, "--force"),
    ])?;
    let workloads = args::resolve_workloads(&parsed.positional, parsed.all, parsed.suite)?;
    // The experiments crate opens its process-wide cache from the
    // environment on first use; this routes every replay below through
    // the on-disk cache (or explicitly disables it). The batch size is
    // latched the same way, before the first replay.
    args::configure_cache_env(&parsed);
    args::configure_batch_env(&parsed);

    let configs = PredictorChoice::figure5_set();
    let outcomes = util::sweep(workloads, parsed.scale, |_| {
        PredictorChoice::build_sims(&configs)
    });

    let suites: Vec<Suite> = Suite::ALL
        .into_iter()
        .filter(|s| outcomes.iter().any(|o| o.item.suite() == *s))
        .collect();

    let table = if suites.len() == 1 {
        // Single suite: per-workload rows, configs as columns.
        let mut header = vec!["workload".to_owned()];
        header.extend(configs.iter().map(|c| c.label()));
        let mut t = TextTable::new(header);
        for o in &outcomes {
            let mut cells = vec![o.item.name().to_owned()];
            cells.extend(o.tools.iter().map(|s| f2(s.report().total().mpki())));
            t.row(cells);
        }
        t
    } else {
        // Multi-suite: per-suite means, suites as columns.
        let mut header = vec!["config".to_owned()];
        header.extend(suites.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for (ci, config) in configs.iter().enumerate() {
            let mut cells = vec![config.label()];
            for suite in &suites {
                let mpki = util::mean(
                    outcomes
                        .iter()
                        .filter(|o| o.item.suite() == *suite)
                        .map(|o| o.tools[ci].report().total().mpki()),
                );
                cells.push(f2(mpki));
            }
            t.row(cells);
        }
        t
    };
    let heading = if suites.len() == 1 {
        format!("branch MPKI per workload ({} suite)", suites[0])
    } else {
        "branch MPKI per predictor configuration (mean per suite)".to_owned()
    };
    crate::print_ignoring_pipe(&format!(
        "{heading}\n{}{}\n",
        table.render(),
        util::sweep_report()
    ));
    Ok(ExitCode::SUCCESS)
}
