//! Minimal flag parsing shared by the subcommands (the workspace builds
//! offline, so no clap — the same hand-rolled style as `repro`).

use rebalance_coresim::FetchModelKind;
use rebalance_trace::BackendChoice;
use rebalance_workloads::{Scale, Suite};

/// Accumulates positional arguments and recognized flags; rejects
/// anything else.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Non-flag arguments in order.
    pub positional: Vec<String>,
    /// `--scale` value (default smoke: CLI runs favor fast iteration).
    pub scale: Scale,
    /// `--suite NAME` (restrict the selection to one suite).
    pub suite: Option<Suite>,
    /// `--cache DIR`.
    pub cache_dir: Option<String>,
    /// `--no-cache`.
    pub no_cache: bool,
    /// `--all`.
    pub all: bool,
    /// `--force`.
    pub force: bool,
    /// `--json DIR`.
    pub json_dir: Option<String>,
    /// `--batch-size N` (events per delivery block; default
    /// [`rebalance_trace::DEFAULT_BATCH_CAPACITY`]).
    pub batch_size: Option<usize>,
    /// `--backend {auto,scalar,wide}` (compute backend for the replay
    /// hot path; default adapts per replay by trace size).
    pub backend: Option<BackendChoice>,
    /// `--model {penalty,ftq}` (CPI timing backend).
    pub model: Option<FetchModelKind>,
    /// `--sample N` (slice each replay into N intervals and replay one
    /// weighted representative per phase cluster).
    pub sample: Option<usize>,
    /// `--sample-k K` (number of phase clusters; implies `--sample`
    /// with the default interval count when given alone).
    pub sample_k: Option<usize>,
    /// `--workers N` (shard the sweep across N worker subprocesses
    /// sharing the on-disk trace cache).
    pub workers: Option<usize>,
    /// `--metrics [text|json[=PATH]]` (collect and emit the telemetry
    /// snapshot after the report; bare `--metrics` means `text`).
    pub metrics: Option<MetricsMode>,
}

/// How `--metrics` renders the telemetry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsMode {
    /// Span tree plus top counters after the report.
    Text,
    /// Versioned `metrics.json`; `Some(path)` overrides the default
    /// location (`--json` dir if given, else the working directory).
    Json(Option<String>),
}

/// Parses `argv` into [`Parsed`].
///
/// # Errors
///
/// A usage message naming the offending flag or missing value.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        scale: Scale::Smoke,
        ..Parsed::default()
    };
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                parsed.scale = rebalance_experiments::driver::parse_scale(v)
                    .ok_or_else(|| format!("invalid scale `{v}`"))?;
            }
            "--cache" => {
                parsed.cache_dir = Some(it.next().ok_or("--cache needs a directory")?.clone());
            }
            "--suite" => {
                let v = it.next().ok_or("--suite needs a name")?;
                parsed.suite = Some(Suite::parse(v).ok_or_else(|| {
                    format!("unknown suite `{v}` (expected: exmatex specomp npb specint kernels)")
                })?);
            }
            "--json" => {
                parsed.json_dir = Some(it.next().ok_or("--json needs a directory")?.clone());
            }
            "--workloads" => {
                // Comma-separated names; equivalent to listing them as
                // positional arguments.
                parsed
                    .positional
                    .push(it.next().ok_or("--workloads needs a name list")?.clone());
            }
            "--batch-size" => {
                let v = it.next().ok_or("--batch-size needs a value")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| (1..=rebalance_trace::MAX_BATCH_CAPACITY).contains(&n))
                    .ok_or_else(|| {
                        format!(
                            "invalid batch size `{v}` (expected 1..={})",
                            rebalance_trace::MAX_BATCH_CAPACITY
                        )
                    })?;
                parsed.batch_size = Some(n);
            }
            "--backend" => {
                let v = it.next().ok_or("--backend needs a value")?;
                parsed.backend = Some(BackendChoice::parse(v).ok_or_else(|| {
                    format!("unknown backend `{v}` (expected: auto scalar wide)")
                })?);
            }
            "--model" => {
                let v = it.next().ok_or("--model needs a value")?;
                parsed.model = Some(
                    FetchModelKind::parse(v)
                        .ok_or_else(|| format!("unknown model `{v}` (expected: penalty ftq)"))?,
                );
            }
            "--sample" => {
                let v = it.next().ok_or("--sample needs an interval count")?;
                parsed.sample = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| format!("invalid interval count `{v}` (expected >= 1)"))?,
                );
            }
            "--sample-k" => {
                let v = it.next().ok_or("--sample-k needs a cluster count")?;
                parsed.sample_k = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| format!("invalid cluster count `{v}` (expected >= 1)"))?,
                );
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                parsed.workers = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| (1..=256).contains(&n))
                        .ok_or_else(|| format!("invalid worker count `{v}` (expected 1..=256)"))?,
                );
            }
            "--metrics" => {
                // The value is optional: consume the next argument only
                // when it names a mode, so `--metrics CG` still treats
                // `CG` as a positional workload.
                parsed.metrics = Some(match it.peek().map(|s| s.as_str()) {
                    Some("text") => {
                        it.next();
                        MetricsMode::Text
                    }
                    Some("json") => {
                        it.next();
                        MetricsMode::Json(None)
                    }
                    Some(v) if v.starts_with("json=") => {
                        let path = v["json=".len()..].to_owned();
                        if path.is_empty() {
                            return Err("--metrics json= needs a file path".into());
                        }
                        it.next();
                        MetricsMode::Json(Some(path))
                    }
                    _ => MetricsMode::Text,
                });
            }
            "--no-cache" => parsed.no_cache = true,
            "--all" => parsed.all = true,
            "--force" => parsed.force = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            positional => parsed.positional.push(positional.to_owned()),
        }
    }
    if parsed.no_cache && parsed.cache_dir.is_some() {
        return Err("--no-cache and --cache are mutually exclusive".into());
    }
    Ok(parsed)
}

/// Rejects options the calling subcommand does not support. Each entry
/// is `(was the flag given, its name)`.
///
/// # Errors
///
/// Names the first inapplicable flag.
pub fn forbid(flags: &[(bool, &str)]) -> Result<(), String> {
    for (present, name) in flags {
        if *present {
            return Err(format!("{name} is not supported by this subcommand"));
        }
    }
    Ok(())
}

/// The sampling flags as [`forbid`] entries, for subcommands that do
/// not run timing sweeps.
pub fn sampling_flags(parsed: &Parsed) -> [(bool, &'static str); 2] {
    [
        (parsed.sample.is_some(), "--sample"),
        (parsed.sample_k.is_some(), "--sample-k"),
    ]
}

/// The `--metrics` flag as a [`forbid`] entry, for subcommands without
/// a telemetry surface.
pub fn metrics_flag(parsed: &Parsed) -> [(bool, &'static str); 1] {
    [(parsed.metrics.is_some(), "--metrics")]
}

/// Turns telemetry collection on when `--metrics` was given. The
/// `REBALANCE_METRICS` env latch is honored independently by the
/// telemetry crate, so this only ever widens. Must run before the
/// first replay so every stage is covered.
pub fn configure_metrics(parsed: &Parsed) {
    if parsed.metrics.is_some() {
        rebalance_telemetry::set_enabled(true);
    }
}

/// The cache directory to use: explicit `--cache`, or the default.
pub fn cache_dir(parsed: &Parsed) -> String {
    parsed
        .cache_dir
        .clone()
        .unwrap_or_else(|| crate::DEFAULT_CACHE_DIR.to_owned())
}

/// Points the experiments crate's process-wide cache at the chosen
/// directory — or, with `--no-cache`, clears any inherited
/// `REBALANCE_TRACE_CACHE` so the opt-out also wins over the caller's
/// environment.
pub fn configure_cache_env(parsed: &Parsed) {
    use rebalance_experiments::util::TRACE_CACHE_ENV;
    if parsed.no_cache {
        std::env::remove_var(TRACE_CACHE_ENV);
    } else {
        std::env::set_var(TRACE_CACHE_ENV, cache_dir(parsed));
    }
}

/// Applies the replay hot-path knobs: `--batch-size` through the
/// explicit capacity setter (which takes precedence over
/// `REBALANCE_BATCH` and turns a too-late conflicting set into a clean
/// error instead of a silently ignored flag) and `--backend` through
/// the process-wide compute-backend override. Must run early in each
/// subcommand, before the first replay.
///
/// # Errors
///
/// The capacity was already latched to a different value.
pub fn configure_replay(parsed: &Parsed) -> Result<(), String> {
    if let Some(n) = parsed.batch_size {
        rebalance_trace::set_batch_capacity(n).map_err(|e| format!("--batch-size: {e}"))?;
    }
    if let Some(choice) = parsed.backend {
        rebalance_trace::set_compute_backend(choice);
    }
    Ok(())
}

/// The sampling configuration implied by `--sample`/`--sample-k`:
/// `None` when neither flag was given, otherwise the default geometry
/// with the given knobs overridden (either flag alone implies the
/// other's default).
pub fn sampling_config(parsed: &Parsed) -> Option<rebalance_trace::SamplingConfig> {
    if parsed.sample.is_none() && parsed.sample_k.is_none() {
        return None;
    }
    let mut cfg = rebalance_trace::SamplingConfig::default();
    if let Some(n) = parsed.sample {
        cfg = cfg.with_intervals(n);
    }
    if let Some(k) = parsed.sample_k {
        cfg = cfg.with_k(k);
    }
    Some(cfg)
}

/// Latches `--sample`/`--sample-k` into the process-wide sampling
/// switch every weighted sweep consults. Like the cache and batch
/// knobs, must run before the first replay.
pub fn configure_sampling(parsed: &Parsed) {
    if let Some(cfg) = sampling_config(parsed) {
        rebalance_experiments::util::set_sampling(Some(cfg));
    }
}

/// Resolves a suite filter, workload names, or the whole roster into
/// `Workload`s.
///
/// # Errors
///
/// Names not present in the roster.
pub fn resolve_workloads(
    names: &[String],
    all: bool,
    suite: Option<Suite>,
) -> Result<Vec<rebalance_workloads::Workload>, String> {
    if let Some(suite) = suite {
        if !names.is_empty() || all {
            return Err(
                "--suite is mutually exclusive with --all and explicit workload names".into(),
            );
        }
        return Ok(rebalance_workloads::by_suite(suite));
    }
    if all || names.is_empty() {
        return Ok(rebalance_workloads::all());
    }
    names
        .iter()
        .flat_map(|arg| arg.split(','))
        .filter(|name| !name.is_empty())
        .map(|name| {
            rebalance_workloads::find(name).ok_or_else(|| format!("unknown workload `{name}`"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let p = parse(&argv(&["CG", "--scale", "quick", "--cache", "d", "FT"])).unwrap();
        assert_eq!(p.positional, vec!["CG", "FT"]);
        assert_eq!(p.scale, Scale::Quick);
        assert_eq!(p.cache_dir.as_deref(), Some("d"));
        assert_eq!(cache_dir(&p), "d");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv(&["--scale"])).is_err());
        assert!(parse(&argv(&["--scale", "zero"])).is_err());
        assert!(parse(&argv(&["--bogus"])).is_err());
        assert!(parse(&argv(&["--no-cache", "--cache", "d"])).is_err());
    }

    #[test]
    fn parses_model() {
        let p = parse(&argv(&["--model", "ftq"])).unwrap();
        assert_eq!(p.model, Some(FetchModelKind::Ftq));
        let p = parse(&argv(&["--model", "penalty"])).unwrap();
        assert_eq!(p.model, Some(FetchModelKind::Penalty));
        assert_eq!(parse(&argv(&[])).unwrap().model, None);
        assert!(parse(&argv(&["--model"])).is_err());
        assert!(parse(&argv(&["--model", "sniper"])).is_err());
    }

    #[test]
    fn parses_batch_size() {
        let p = parse(&argv(&["--batch-size", "512"])).unwrap();
        assert_eq!(p.batch_size, Some(512));
        assert_eq!(parse(&argv(&[])).unwrap().batch_size, None);
        assert!(parse(&argv(&["--batch-size"])).is_err());
        assert!(parse(&argv(&["--batch-size", "0"])).is_err());
        assert!(parse(&argv(&["--batch-size", "many"])).is_err());
        // Positions are u32-indexed; oversized capacities are a clean
        // CLI error, not a panic deep in replay.
        assert!(parse(&argv(&["--batch-size", "4294967296"])).is_err());
    }

    #[test]
    fn parses_backend() {
        use rebalance_trace::ComputeBackend;
        let p = parse(&argv(&["--backend", "wide"])).unwrap();
        assert_eq!(p.backend, Some(BackendChoice::Forced(ComputeBackend::Wide)));
        let p = parse(&argv(&["--backend", "scalar"])).unwrap();
        assert_eq!(
            p.backend,
            Some(BackendChoice::Forced(ComputeBackend::Scalar))
        );
        let p = parse(&argv(&["--backend", "auto"])).unwrap();
        assert_eq!(p.backend, Some(BackendChoice::Auto));
        assert_eq!(parse(&argv(&[])).unwrap().backend, None);
        assert!(parse(&argv(&["--backend"])).is_err());
        assert!(parse(&argv(&["--backend", "simd"])).is_err());
    }

    #[test]
    fn parses_sampling_knobs() {
        let p = parse(&argv(&["--sample", "40", "--sample-k", "4"])).unwrap();
        assert_eq!(p.sample, Some(40));
        assert_eq!(p.sample_k, Some(4));
        let cfg = sampling_config(&p).unwrap();
        assert_eq!(cfg.intervals, 40);
        assert_eq!(cfg.k, 4);
        // Either knob alone implies the other's default.
        let cfg = sampling_config(&parse(&argv(&["--sample", "40"])).unwrap()).unwrap();
        assert_eq!(cfg.k, rebalance_trace::SamplingConfig::default().k);
        let cfg = sampling_config(&parse(&argv(&["--sample-k", "2"])).unwrap()).unwrap();
        assert_eq!(
            cfg.intervals,
            rebalance_trace::SamplingConfig::default().intervals
        );
        assert_eq!(sampling_config(&parse(&argv(&[])).unwrap()), None);
        assert!(parse(&argv(&["--sample"])).is_err());
        assert!(parse(&argv(&["--sample", "0"])).is_err());
        assert!(parse(&argv(&["--sample-k", "none"])).is_err());
    }

    #[test]
    fn parses_workers() {
        let p = parse(&argv(&["--workers", "4"])).unwrap();
        assert_eq!(p.workers, Some(4));
        assert_eq!(parse(&argv(&[])).unwrap().workers, None);
        assert!(parse(&argv(&["--workers"])).is_err());
        assert!(parse(&argv(&["--workers", "0"])).is_err());
        assert!(parse(&argv(&["--workers", "257"])).is_err());
        assert!(parse(&argv(&["--workers", "some"])).is_err());
    }

    #[test]
    fn parses_metrics_modes() {
        assert_eq!(parse(&argv(&[])).unwrap().metrics, None);
        let p = parse(&argv(&["--metrics"])).unwrap();
        assert_eq!(p.metrics, Some(MetricsMode::Text));
        let p = parse(&argv(&["--metrics", "text"])).unwrap();
        assert_eq!(p.metrics, Some(MetricsMode::Text));
        let p = parse(&argv(&["--metrics", "json"])).unwrap();
        assert_eq!(p.metrics, Some(MetricsMode::Json(None)));
        let p = parse(&argv(&["--metrics", "json=out/m.json"])).unwrap();
        assert_eq!(
            p.metrics,
            Some(MetricsMode::Json(Some("out/m.json".to_owned())))
        );
        assert!(parse(&argv(&["--metrics", "json="])).is_err());
        // A non-mode word after the flag stays positional.
        let p = parse(&argv(&["--metrics", "CG"])).unwrap();
        assert_eq!(p.metrics, Some(MetricsMode::Text));
        assert_eq!(p.positional, vec!["CG"]);
    }

    #[test]
    fn workload_resolution() {
        let ws = resolve_workloads(&argv(&["CG,FT", "gcc"]), false, None).unwrap();
        assert_eq!(ws.len(), 3);
        assert!(resolve_workloads(&argv(&["nope"]), false, None).is_err());
        assert_eq!(
            resolve_workloads(&[], false, None).unwrap().len(),
            rebalance_workloads::all().len()
        );
        // A suite filter selects exactly that suite's roster.
        let kernels = resolve_workloads(&[], false, Some(Suite::Kernels)).unwrap();
        assert!(kernels.len() >= 6);
        assert!(kernels.iter().all(|w| w.suite() == Suite::Kernels));
    }

    #[test]
    fn parses_suite_filter() {
        let p = parse(&argv(&["--suite", "kernels"])).unwrap();
        assert_eq!(p.suite, Some(Suite::Kernels));
        assert!(parse(&argv(&["--suite"])).is_err());
        assert!(parse(&argv(&["--suite", "quake3"])).is_err());
        assert!(
            resolve_workloads(&argv(&["CG"]), false, Some(Suite::Npb)).is_err(),
            "suite filter and names are mutually exclusive"
        );
        assert!(
            resolve_workloads(&[], true, Some(Suite::Npb)).is_err(),
            "suite filter and --all are mutually exclusive"
        );
    }
}
