//! `rebalance paper` — regenerate the paper's exhibits through the
//! trace cache.

use std::path::PathBuf;
use std::process::ExitCode;

use rebalance_experiments::{driver, util};

use crate::args;

/// Runs the requested exhibits (default: all) and prints the shared
/// replay/cache report at the end. `--suite S` narrows every
/// roster-driven exhibit to one suite; `--model {penalty,ftq}` selects
/// the CPI timing backend for the CMP exhibits.
pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = args::parse(argv)?;
    args::forbid(&[
        (parsed.force, "--force"),
        (parsed.all, "--all (use the `all` exhibit name)"),
    ])?;
    args::configure_cache_env(&parsed);
    args::configure_replay(&parsed)?;
    args::configure_sampling(&parsed);
    args::configure_metrics(&parsed);
    // Both knobs latch process-wide state the exhibits consult; set
    // them before the first exhibit computes anything.
    rebalance_experiments::util::set_suite_filter(parsed.suite);
    if let Some(kind) = parsed.model {
        rebalance_coresim::set_default_fetch_model(kind);
    }
    let exhibits = driver::resolve_exhibits(&parsed.positional)?;

    if let Some(workers) = parsed.workers {
        // Shard the exhibits across worker subprocesses; each worker
        // captures its exhibits' text (and writes its own `--json`
        // dumps into the shared directory), and the coordinator prints
        // the concatenation in exhibit order plus the merged report.
        let (text, report) = {
            let _paper_span = rebalance_telemetry::span("paper");
            crate::shard::paper_sharded(&parsed, &exhibits, workers)?
        };
        crate::print_ignoring_pipe(&format!("{text}{report}\n"));
        crate::metrics::emit(&parsed)?;
        return Ok(ExitCode::SUCCESS);
    }

    let json_dir = parsed.json_dir.as_ref().map(PathBuf::from);
    {
        let _paper_span = rebalance_telemetry::span("paper");
        let mut out = std::io::stdout().lock();
        if let Err(e) = driver::run_exhibits(&exhibits, parsed.scale, json_dir.as_deref(), &mut out)
        {
            // A closed pipe (`rebalance paper ... | head`) is a normal way
            // to stop reading, not a failure.
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                return Ok(ExitCode::SUCCESS);
            }
            return Err(e.to_string());
        }
    }
    crate::print_ignoring_pipe(&format!("{}\n", util::sweep_report()));
    crate::metrics::emit(&parsed)?;
    Ok(ExitCode::SUCCESS)
}
