//! End-to-end `--workers N`: the sharded coordinator's merged output —
//! terminal text and `--json` dumps — must be bit-identical to the
//! single-process run, and a cold shared cache must see exactly one
//! generation per distinct key even with workers racing on overlapping
//! state.

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_rebalance");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rebalance-workers-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the binary, returning stdout; panics on failure with stderr.
fn run(args: &[&str]) -> String {
    let out = Command::new(BIN)
        .args(args)
        // The tests pin cache behavior per invocation; a cache or batch
        // override inherited from the harness environment must not leak
        // into either side of the comparison.
        .env_remove("REBALANCE_TRACE_CACHE")
        .env_remove("REBALANCE_BATCH")
        .env_remove("REBALANCE_BACKEND")
        .output()
        .expect("spawn rebalance");
    assert!(
        out.status.success(),
        "rebalance {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

#[test]
fn sharded_sweep_is_bit_identical_to_single_process() {
    let (c1, c2) = (scratch("sweep-c1"), scratch("sweep-c2"));
    let (j1, j2) = (scratch("sweep-j1"), scratch("sweep-j2"));
    let single = run(&[
        "sweep",
        "--workloads",
        "CG,FT,MG,gcc,CoMD,swim",
        "--cache",
        c1.to_str().unwrap(),
        "--json",
        j1.to_str().unwrap(),
    ]);
    let sharded = run(&[
        "sweep",
        "--workloads",
        "CG,FT,MG,gcc,CoMD,swim",
        "--cache",
        c2.to_str().unwrap(),
        "--json",
        j2.to_str().unwrap(),
        "--workers",
        "3",
    ]);
    assert_eq!(single, sharded, "terminal output diverged");
    for name in ["sweep.json", "report.json"] {
        assert_eq!(read(&j1, name), read(&j2, name), "{name} diverged");
    }

    // Cold shared cache, racing workers: exactly one generation (and
    // one snapshot file) per distinct key, nothing rejected.
    assert!(
        sharded.contains("generations: 6"),
        "expected one generation per key in:\n{sharded}"
    );
    assert!(sharded.contains("0 rejected"), "in:\n{sharded}");
    let snapshots = std::fs::read_dir(&c2)
        .expect("cache dir")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|x| x == "rbts"))
        })
        .count();
    assert_eq!(snapshots, 6, "one snapshot per key");

    // Warm sharded rerun: all hits, still identical tables.
    let warm = run(&[
        "sweep",
        "--workloads",
        "CG,FT,MG,gcc,CoMD,swim",
        "--cache",
        c2.to_str().unwrap(),
        "--workers",
        "3",
    ]);
    assert!(warm.contains("generations: 0"), "in:\n{warm}");
    assert!(warm.contains("100.0% hit rate"), "in:\n{warm}");

    for dir in [c1, c2, j1, j2] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn sharded_fetch_and_paper_match_single_process() {
    let (c1, c2) = (scratch("fp-c1"), scratch("fp-c2"));
    let fetch_single = run(&[
        "fetch",
        "--suite",
        "kernels",
        "--cache",
        c1.to_str().unwrap(),
    ]);
    let fetch_sharded = run(&[
        "fetch",
        "--suite",
        "kernels",
        "--cache",
        c2.to_str().unwrap(),
        "--workers",
        "2",
    ]);
    assert_eq!(fetch_single, fetch_sharded, "fetch output diverged");

    // Paper exhibits shard too; both sides reuse the warm caches above,
    // exercising mixed hit/miss shards.
    let paper_single = run(&["paper", "fig5", "table3", "--cache", c1.to_str().unwrap()]);
    let paper_sharded = run(&[
        "paper",
        "fig5",
        "table3",
        "--cache",
        c2.to_str().unwrap(),
        "--workers",
        "2",
    ]);
    assert_eq!(paper_single, paper_sharded, "paper output diverged");

    for dir in [c1, c2] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn worker_count_is_validated() {
    let out = Command::new(BIN)
        .args(["sweep", "--workers", "0"])
        .output()
        .expect("spawn rebalance");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid worker count"), "stderr: {err}");

    // Subcommands without a sharded sweep reject the flag outright.
    let out = Command::new(BIN)
        .args(["bench", "--workers", "2"])
        .output()
        .expect("spawn rebalance");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--workers"), "stderr: {err}");
}
