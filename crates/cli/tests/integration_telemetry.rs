//! End-to-end telemetry merge law: with metrics enabled, a sharded
//! `sweep --workers 2` must report the same machine-independent
//! counters as the single-process run (timing counters and span
//! durations are machine-dependent, so spans are compared
//! structurally — same paths, same completion counts), and both
//! snapshots must satisfy the attribution invariant (a span's
//! children never account for more time than the span itself).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use serde::Value;

const BIN: &str = env!("CARGO_BIN_EXE_rebalance");

/// Workloads under test: enough items that `--workers 2` produces
/// uneven shards, small enough to stay quick at smoke scale.
const WORKLOADS: &str = "CG,FT,MG";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rebalance-telemetry-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the binary, returning stdout; panics on failure with stderr.
fn run(args: &[&str]) -> String {
    let out = Command::new(BIN)
        .args(args)
        // Pin cache and backend per invocation — overrides inherited
        // from the harness environment must not leak into either side
        // of the comparison. REBALANCE_BATCH and REBALANCE_METRICS are
        // deliberately passed through: CI reruns this test at both
        // batch-size extremes with the env latch set, and the merge
        // law must hold under all of them.
        .env_remove("REBALANCE_TRACE_CACHE")
        .env_remove("REBALANCE_BACKEND")
        .output()
        .expect("spawn rebalance");
    assert!(
        out.status.success(),
        "rebalance {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn load_metrics(dir: &Path) -> Value {
    let path = dir.join("metrics.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {}: {e:?}", path.display()))
}

fn map<'a>(v: &'a Value, key: &str) -> &'a [(String, Value)] {
    v.get(key)
        .and_then(Value::as_map)
        .unwrap_or_else(|| panic!("metrics.json: missing map {key:?}"))
}

/// Counter values, machine-dependent duration counters excluded: the
/// `_ns` suffix marks wall-clock sums, which legitimately differ
/// between a single process and two workers.
fn stable_counters(v: &Value) -> BTreeMap<String, u64> {
    map(v, "counters")
        .iter()
        .filter(|(name, _)| !name.ends_with("_ns"))
        .map(|(name, value)| (name.clone(), value.as_u64().expect("counter value")))
        .collect()
}

/// Collects every `replay` subtree in the span forest (replays run on
/// pool threads, so their roots may sit at any depth relative to the
/// command span) and folds them into one path → completion-count map.
/// Durations are deliberately dropped: the merge law for timings is
/// structural, not value-level.
fn replay_span_counts(v: &Value) -> BTreeMap<String, u64> {
    fn fold(path: &str, node: &Value, out: &mut BTreeMap<String, u64>) {
        let count = node
            .get("count")
            .and_then(Value::as_u64)
            .expect("span count");
        *out.entry(path.to_owned()).or_insert(0) += count;
        if let Some(children) = node.get("children").and_then(Value::as_map) {
            for (name, child) in children {
                fold(&format!("{path}/{name}"), child, out);
            }
        }
    }
    fn find(name: &str, node: &Value, out: &mut BTreeMap<String, u64>) {
        if name == "replay" {
            fold("replay", node, out);
            return;
        }
        if let Some(children) = node.get("children").and_then(Value::as_map) {
            for (child_name, child) in children {
                find(child_name, child, out);
            }
        }
    }
    let mut out = BTreeMap::new();
    find("", v.get("spans").expect("spans"), &mut out);
    out
}

/// The attribution invariant, checked over the raw JSON: for every
/// recorded span, the children's total time never exceeds the span's
/// own measurement, so each nanosecond belongs to exactly one leaf
/// (self-time counting as an implicit leaf). The synthetic root has
/// `count == 0` and is skipped.
fn check_attribution(path: &str, node: &Value) {
    let total = node
        .get("total_ns")
        .and_then(Value::as_u64)
        .expect("span total_ns");
    let count = node.get("count").and_then(Value::as_u64).expect("count");
    let children = node.get("children").and_then(Value::as_map).unwrap_or(&[]);
    let kids: u64 = children
        .iter()
        .map(|(_, c)| c.get("total_ns").and_then(Value::as_u64).unwrap_or(0))
        .sum();
    assert!(
        count == 0 || kids <= total,
        "span {path}: children account for {kids}ns but the span measured {total}ns"
    );
    for (name, child) in children {
        check_attribution(&format!("{path}/{name}"), child);
    }
}

#[test]
fn sharded_sweep_metrics_match_single_process() {
    let cache = scratch("cache");
    let (j1, j2) = (scratch("single"), scratch("sharded"));

    // Warm the shared cache first so both measured runs replay the
    // same snapshots: all hits, zero generations on either side.
    run(&[
        "trace",
        "record",
        "CG",
        "FT",
        "MG",
        "--cache",
        cache.to_str().unwrap(),
    ]);

    let single = run(&[
        "sweep",
        "--workloads",
        WORKLOADS,
        "--cache",
        cache.to_str().unwrap(),
        "--metrics",
        &format!("json={}", j1.join("metrics.json").display()),
    ]);
    let sharded = run(&[
        "sweep",
        "--workloads",
        WORKLOADS,
        "--cache",
        cache.to_str().unwrap(),
        "--workers",
        "2",
        "--metrics",
        &format!("json={}", j2.join("metrics.json").display()),
    ]);
    // Telemetry must not disturb the replay results themselves: the
    // sweep tables (everything before the metrics footer) still match.
    let table_of = |out: &str| {
        out.lines()
            .take_while(|l| !l.starts_with("metrics written"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        table_of(&single),
        table_of(&sharded),
        "sweep output diverged"
    );

    let (m1, m2) = (load_metrics(&j1), load_metrics(&j2));
    for m in [&m1, &m2] {
        assert_eq!(m.get("version").and_then(Value::as_u64), Some(1));
    }

    // Merge law, value level: every machine-independent counter from
    // the two workers folds to exactly the single-process totals.
    let (c1, c2) = (stable_counters(&m1), stable_counters(&m2));
    assert!(
        c1.contains_key("replay.events"),
        "expected replay counters in {c1:?}"
    );
    assert!(
        c1.keys().any(|k| k.ends_with(".on_batch_calls")),
        "expected per-tool counters in {c1:?}"
    );
    assert_eq!(
        c1, c2,
        "stable counters diverged between single and sharded"
    );

    // Merge law, structural level: the replay span forest has the same
    // shape and the same completion counts on both sides (durations
    // are machine-dependent and not compared).
    let (s1, s2) = (replay_span_counts(&m1), replay_span_counts(&m2));
    assert!(!s1.is_empty(), "expected replay spans in {m1:?}");
    assert_eq!(s1, s2, "replay span structure diverged");

    // Attribution invariant on both snapshots.
    check_attribution("", m1.get("spans").expect("spans"));
    check_attribution("", m2.get("spans").expect("spans"));

    // The sharded side additionally records the coordinator's own
    // stages; the shard fan-out must be visible as spans.
    let spans2 = m2
        .get("spans")
        .and_then(|s| s.get("children"))
        .expect("children");
    let top: Vec<&str> = spans2
        .as_map()
        .expect("span map")
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    assert!(top.contains(&"sweep"), "coordinator span missing: {top:?}");

    for dir in [cache, j1, j2] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn metrics_text_prints_span_tree_and_counters() {
    let cache = scratch("text-cache");
    let out = run(&[
        "sweep",
        "--workloads",
        "CG",
        "--cache",
        cache.to_str().unwrap(),
        "--metrics",
        "text",
    ]);
    assert!(out.contains("telemetry"), "in:\n{out}");
    assert!(out.contains("replay"), "in:\n{out}");
    assert!(out.contains("replay.events"), "in:\n{out}");
    let _ = std::fs::remove_dir_all(cache);
}
